"""The probe cache: memoised master-data lookups for batch cleaning.

Batch workloads probe the master data with heavily repeated keys — a
relation of customer transactions re-derives the same zip → (street,
city) correction for every tuple sharing that zip. The
:class:`ProbeCache` is a bounded LRU over :class:`MasterMatch` results
keyed on ``(rule id, normalised key values)``; the
:class:`CachingMasterDataManager` drops it transparently between the
chase/monitor machinery and a base :class:`MasterDataManager`.

Cache keys are normalised with the rule's match operators (``digits``,
``alnum``, …), so two raw keys that the index would bucket together
('EH8 4AH' / 'eh8 4ah') also share one cache entry. Cached values are
frozen :class:`MasterMatch` objects and probing is deterministic, so a
hit returns byte-for-byte what the base manager would have computed —
the cache can only change speed, never output.
"""

from __future__ import annotations

import os
import pickle
import threading
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping, Sequence

from repro.core.rule import Constant, EditingRule
from repro.master.manager import MasterDataManager, MasterMatch
from repro.master.store import MasterStore
from repro.relational.index import HashIndex
from repro.relational.relation import Relation


@dataclass(frozen=True)
class CacheStats:
    """Hit/miss/eviction counters for one cache (or an aggregate)."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def probes(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.probes if self.probes else 0.0

    def __add__(self, other: "CacheStats") -> "CacheStats":
        return CacheStats(
            hits=self.hits + other.hits,
            misses=self.misses + other.misses,
            evictions=self.evictions + other.evictions,
        )

    def to_json(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }


class ProbeCache:
    """A bounded, thread-safe LRU store of probe results.

    Threading model (enforced by construction, documented here so it
    stays that way):

    * the **store** (entries + eviction counter) is guarded by one
      lock — ``get``/``put`` are safe from any number of threads;
    * **hit/miss counters** are *not* kept here. In the batch layer
      they live on the per-shard :class:`CachingMasterDataManager`,
      each of which is owned by exactly one worker thread for its
      lifetime (see :func:`repro.batch.executor._run_shard`) and
      guards its increments anyway, so per-shard statistics stay exact
      even when the store is shared. The entry service, which has no
      single-owner managers, uses
      :class:`repro.service.cache.SharedProbeCache` — the wrapper that
      accumulates :class:`CacheStats` under the same lock as the store
      and is safe to call from executor threads and an asyncio event
      loop alike.

    Cached values are frozen and probing is deterministic, so sharing
    a cache can reorder *when* work happens but never what any caller
    observes.
    """

    def __init__(self, maxsize: int = 4096):
        if maxsize < 1:
            raise ValueError(f"cache maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self._store: OrderedDict[tuple, MasterMatch] = OrderedDict()
        self._lock = threading.Lock()
        self._evictions = 0

    def get(self, key: tuple) -> MasterMatch | None:
        """The cached match for ``key``, or None (marks it most-recent)."""
        with self._lock:
            match = self._store.get(key)
            if match is not None:
                self._store.move_to_end(key)
            return match

    def put(self, key: tuple, match: MasterMatch) -> None:
        with self._lock:
            self._store[key] = match
            self._store.move_to_end(key)
            while len(self._store) > self.maxsize:
                self._store.popitem(last=False)
                self._evictions += 1

    @property
    def evictions(self) -> int:
        return self._evictions

    def snapshot(self) -> list[tuple[tuple, MasterMatch]]:
        """The current entries, oldest first (a consistent copy)."""
        with self._lock:
            return list(self._store.items())

    def preload(self, entries: Sequence[tuple[tuple, MasterMatch]]) -> int:
        """Seed the cache from a snapshot; returns the resident count.

        Overflow past ``maxsize`` drops the oldest entries without
        counting as evictions — nothing was ever displaced at runtime.
        """
        with self._lock:
            for key, match in entries:
                self._store[key] = match
                self._store.move_to_end(key)
            while len(self._store) > self.maxsize:
                self._store.popitem(last=False)
            return len(self._store)

    def __len__(self) -> int:
        return len(self._store)

    def __repr__(self) -> str:
        return f"ProbeCache({len(self)}/{self.maxsize} entries, {self._evictions} evictions)"


class CachingMasterDataManager(MasterDataManager):
    """A :class:`MasterDataManager` whose :meth:`match` consults a
    :class:`ProbeCache` first.

    Store-agnostic: pass a bare :class:`Relation` (wrapped in the single
    backend) or any :class:`~repro.master.store.MasterStore` — the cache
    sits *above* the store, so a hit costs the same whatever backend is
    underneath, and a miss is answered by whichever backend the batch
    run configured. Shares the base store (and therefore its lazily
    built probe structures); constant rules bypass the cache — they
    never touch master data. Intended to live for one batch run: the
    cache is never invalidated, so do not mutate the master data
    underneath it.

    Each instance is built for (and owned by) one shard worker, but the
    hit/miss counters are guarded anyway: accumulation must stay exact
    even if a future caller shares an instance between threads, and the
    uncontended lock costs nanoseconds next to a probe.
    """

    def __init__(self, source: Relation | MasterStore, cache: ProbeCache):
        super().__init__(source)
        self.cache = cache
        self.hits = 0
        self.misses = 0
        self._stats_lock = threading.Lock()
        self._probes: dict[str, HashIndex] = {}  # rule_id -> key normaliser
        #: (rule_id, raw lhs values) -> normalized cache key. Normalizing
        #: a probe key is pure, and batch traffic re-probes the same few
        #: raw keys constantly, so skip re-normalizing on repeats.
        self._key_memo: dict[tuple, tuple] = {}

    def _cache_key(self, rule: EditingRule, values: Mapping[str, Any]) -> tuple:
        raw = tuple(values[a] for a in rule.lhs_attrs)
        try:
            key = self._key_memo.get((rule.rule_id, raw))
        except TypeError:  # unhashable value in the probe key
            key = None
            memo_key = None
        else:
            memo_key = (rule.rule_id, raw)
        if key is not None:
            return key
        probe = self._probes.get(rule.rule_id)
        if probe is None:
            probe = HashIndex(rule.m_attrs, rule.ops)
            self._probes[rule.rule_id] = probe
        key = (rule.rule_id, probe.key_of(raw))
        if memo_key is not None:
            if len(self._key_memo) >= 65536:
                self._key_memo.clear()
            self._key_memo[memo_key] = key
        return key

    def match(
        self,
        rule: EditingRule,
        values: Mapping[str, Any],
        *,
        use_index: bool = True,
    ) -> MasterMatch:
        if isinstance(rule.source, Constant):
            return super().match(rule, values, use_index=use_index)
        key = self._cache_key(rule, values)
        cached = self.cache.get(key)
        if cached is not None:
            with self._stats_lock:
                self.hits += 1
            return cached
        with self._stats_lock:
            self.misses += 1
        match = super().match(rule, values, use_index=use_index)
        self.cache.put(key, match)
        return match

    @property
    def stats(self) -> CacheStats:
        return CacheStats(hits=self.hits, misses=self.misses, evictions=self.cache.evictions)

    def __repr__(self) -> str:
        return (
            f"CachingMasterDataManager({self.relation!r}, "
            f"{self.hits} hits / {self.misses} misses)"
        )


# ---------------------------------------------------------------------------
# Cross-run persistence
# ---------------------------------------------------------------------------

#: On-disk snapshot format; bump on any incompatible layout change.
CACHE_SNAPSHOT_FORMAT = 1


def save_probe_cache(
    cache: ProbeCache,
    path: str | Path,
    *,
    master_digest: str,
    rule_ids: Sequence[str],
) -> int:
    """Persist ``cache`` for a future batch run; returns entries written.

    The snapshot is stamped with the master *content* digest and the
    rule-id set, and :func:`load_probe_cache` refuses a snapshot whose
    stamps disagree with the loading run — a cached
    :class:`~repro.master.manager.MasterMatch` is only valid against the
    exact master data and rules that produced it. The write is atomic
    (temp file + rename), so a crash mid-save leaves the previous
    snapshot intact.
    """
    path = Path(path)
    entries = cache.snapshot()
    payload = {
        "format": CACHE_SNAPSHOT_FORMAT,
        "master": master_digest,
        "rules": tuple(sorted(rule_ids)),
        "entries": entries,
    }
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as fh:
        pickle.dump(payload, fh, protocol=pickle.HIGHEST_PROTOCOL)
    os.replace(tmp, path)
    return len(entries)


def load_probe_cache(
    path: str | Path,
    *,
    master_digest: str,
    rule_ids: Sequence[str],
    maxsize: int = 4096,
) -> tuple[ProbeCache | None, str]:
    """Load a snapshot written by :func:`save_probe_cache`.

    Returns ``(cache, note)``: a warm :class:`ProbeCache` when the
    snapshot is present, readable and stamped for this exact
    (master content, rule set) pair, else ``(None, why)`` — a stale or
    corrupt snapshot degrades to a cold start, never to wrong answers.
    """
    path = Path(path)
    if not path.exists():
        return None, f"cold start (no snapshot at {path})"
    try:
        with open(path, "rb") as fh:
            payload = pickle.load(fh)
        fmt = payload["format"]
        master = payload["master"]
        rules = payload["rules"]
        entries = payload["entries"]
    except Exception as exc:  # truncated, corrupt, or foreign pickle
        return None, f"cold start (unreadable snapshot: {exc})"
    if fmt != CACHE_SNAPSHOT_FORMAT:
        return None, f"cold start (snapshot format {fmt} != {CACHE_SNAPSHOT_FORMAT})"
    if master != master_digest:
        return None, "cold start (master data changed since the snapshot)"
    if rules != tuple(sorted(rule_ids)):
        return None, "cold start (rule set changed since the snapshot)"
    cache = ProbeCache(maxsize)
    resident = cache.preload(entries)
    return cache, f"warm start ({resident} entries from {path})"
