"""Benchmark harness utilities.

Each bench module under ``benchmarks/`` reproduces one paper artefact
(DESIGN.md §3). pytest-benchmark handles the timing statistics; this
module handles the *paper-shaped* outputs: result rows are printed and
also written under ``benchmarks/out/`` so the tables survive pytest's
output capture and can be pasted into EXPERIMENTS.md.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable, Sequence

from repro.explorer.render import format_table

#: Where bench tables land (created on demand, relative to the repo root).
OUT_DIR = Path(__file__).resolve().parents[3] / "benchmarks" / "out"


@dataclass
class BenchResult:
    """A titled table of result rows for one experiment."""

    experiment: str
    headers: tuple[str, ...]
    rows: list[tuple] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add(self, *row: Any) -> None:
        self.rows.append(tuple(row))

    def note(self, text: str) -> None:
        self.notes.append(text)

    def render(self) -> str:
        body = format_table(self.headers, self.rows, title=self.experiment)
        if self.notes:
            body += "\n" + "\n".join(f"# {n}" for n in self.notes)
        return body


def save_table(result: BenchResult, filename: str) -> Path:
    """Print the table and persist it under ``benchmarks/out/``."""
    OUT_DIR.mkdir(parents=True, exist_ok=True)
    path = OUT_DIR / filename
    text = result.render()
    path.write_text(text + "\n", encoding="utf-8")
    print()
    print(text)
    return path


def time_call(fn: Callable[[], Any], repeat: int = 3) -> tuple[float, Any]:
    """(best wall-clock seconds, last return value) over ``repeat`` runs."""
    best = float("inf")
    value = None
    for _ in range(repeat):
        start = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - start)
    return best, value


def run_rows(
    result: BenchResult,
    params: Iterable[Any],
    fn: Callable[[Any], Sequence[Any]],
) -> BenchResult:
    """Run ``fn`` per parameter, appending its row to ``result``."""
    for p in params:
        result.add(*fn(p))
    return result
