"""Benchmark harness utilities.

Each bench module under ``benchmarks/`` reproduces one paper artefact
(DESIGN.md §3). pytest-benchmark handles the timing statistics; this
module handles the *paper-shaped* outputs: result rows are printed and
also written under ``benchmarks/out/`` so the tables survive pytest's
output capture and can be pasted into EXPERIMENTS.md.
"""

from __future__ import annotations

import json
import platform
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable, Sequence

from repro.explorer.render import format_table

#: The repo root (BENCH_*.json trajectory files land here).
REPO_ROOT = Path(__file__).resolve().parents[3]

#: Where bench tables land (created on demand, relative to the repo root).
OUT_DIR = REPO_ROOT / "benchmarks" / "out"


@dataclass
class BenchResult:
    """A titled table of result rows for one experiment."""

    experiment: str
    headers: tuple[str, ...]
    rows: list[tuple] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add(self, *row: Any) -> None:
        self.rows.append(tuple(row))

    def note(self, text: str) -> None:
        self.notes.append(text)

    def render(self) -> str:
        body = format_table(self.headers, self.rows, title=self.experiment)
        if self.notes:
            body += "\n" + "\n".join(f"# {n}" for n in self.notes)
        return body

    def to_json(self) -> dict:
        """A machine-readable snapshot (rows keyed by header name)."""
        return {
            "experiment": self.experiment,
            "headers": list(self.headers),
            "rows": [dict(zip(self.headers, row)) for row in self.rows],
            "notes": list(self.notes),
            "machine": {
                "python": platform.python_version(),
                "platform": platform.platform(),
                "cpus": _cpu_count(),
            },
        }


def save_table(result: BenchResult, filename: str) -> Path:
    """Print the table and persist it under ``benchmarks/out/``."""
    OUT_DIR.mkdir(parents=True, exist_ok=True)
    path = OUT_DIR / filename
    text = result.render()
    path.write_text(text + "\n", encoding="utf-8")
    print()
    print(text)
    return path


def _cpu_count() -> int:
    import os

    return os.cpu_count() or 1


def save_json(result: BenchResult, filename: str, out_dir: Path | None = None) -> Path:
    """Persist the table as ``BENCH_*.json`` for the perf trajectory.

    JSON snapshots default to the repo root (unlike the text tables
    under ``benchmarks/out/``) so successive PRs leave a machine-
    readable performance trail next to the code they measured.
    """
    out_dir = out_dir if out_dir is not None else REPO_ROOT
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / filename
    path.write_text(
        json.dumps(result.to_json(), indent=2, default=str) + "\n", encoding="utf-8"
    )
    return path


def time_call(fn: Callable[[], Any], repeat: int = 3) -> tuple[float, Any]:
    """(best wall-clock seconds, last return value) over ``repeat`` runs."""
    best = float("inf")
    value = None
    for _ in range(repeat):
        start = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - start)
    return best, value


def run_rows(
    result: BenchResult,
    params: Iterable[Any],
    fn: Callable[[Any], Sequence[Any]],
) -> BenchResult:
    """Run ``fn`` per parameter, appending its row to ``result``."""
    for p in params:
        result.add(*fn(p))
    return result
