"""Shared benchmark harness: experiment runners and result tables."""

from repro.bench.harness import BenchResult, run_rows, save_table, time_call

__all__ = ["BenchResult", "run_rows", "save_table", "time_call"]
