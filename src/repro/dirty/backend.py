"""The DB-API seam under the dirty-relation subsystem.

The paged cleaner (:mod:`repro.dirty.cleaner`) never speaks SQL
dialects directly: everything it needs from a database is pinned down
here as a tiny backend interface — open a (possibly read-only) DB-API
connection, quote an identifier, list a table's columns, and name the
integer row-key expression pages stream by. SQLite is the first
implementation; a postgres/mysql backend slots in by subclassing
:class:`DbBackend` (qmark→format paramstyle translation and a
``bigserial``/``AUTO_INCREMENT`` key column instead of ``rowid``)
without touching the paging, archive or undo logic above it.
"""

from __future__ import annotations

import sqlite3
from pathlib import Path
from typing import Any, Sequence

from repro.errors import DirtyDataError


def require_db_scalar(value: Any, context: str) -> None:
    """Reject cell values that do not round-trip a SQL column losslessly.

    Stricter than the master snapshot's JSON gate: SQL columns store
    booleans as integers, so ``True`` would come back as ``1`` — a
    silent type change the bit-identical guarantee cannot absorb.
    """
    if value is None or type(value) in (str, int, float):
        return
    raise DirtyDataError(
        f"cannot store cell value {value!r} ({context}): only str/int/float/None "
        f"round-trip a database column losslessly"
    )


class DbBackend:
    """Abstract database backend: the operations paging and undo need."""

    name = "abstract"

    #: SQL expression selecting the stable integer row key. Updates and
    #: archive rows address cells by it, so it must never change under
    #: UPDATE (sqlite's ``rowid`` has exactly that property).
    row_key = "rowid"

    def connect(self, *, readonly: bool = False):
        """A DB-API connection; ``readonly`` must make every write fail."""
        raise NotImplementedError

    def quote(self, ident: str) -> str:
        """Quote one identifier for this dialect."""
        return '"' + ident.replace('"', '""') + '"'

    def table_columns(self, conn, table: str) -> list[str]:
        """Column names of ``table`` in declaration order (empty = no table)."""
        raise NotImplementedError

    def describe(self) -> str:
        raise NotImplementedError


class SqliteBackend(DbBackend):
    """SQLite: the dirty table, change archive and run records share one
    file, so a clean run and its reversibility travel together."""

    name = "sqlite"

    def __init__(self, path: str | Path):
        self.path = Path(path)

    def connect(self, *, readonly: bool = False) -> sqlite3.Connection:
        if readonly:
            if not self.path.exists():
                raise DirtyDataError(f"no dirty database at {self.path}")
            # URI mode=ro: any write attempt raises OperationalError, so a
            # dry run provably cannot alter the file.
            conn = sqlite3.connect(f"file:{self.path}?mode=ro", uri=True)
        else:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            conn = sqlite3.connect(self.path)
        # Explicit transaction control: the cleaner brackets each page
        # (dirty updates + archive rows + progress) in one transaction.
        conn.isolation_level = None
        return conn

    def table_columns(self, conn, table: str) -> list[str]:
        rows = conn.execute(f"PRAGMA table_info({self.quote(table)})").fetchall()
        return [r[1] for r in rows]

    def describe(self) -> str:
        return f"sqlite:{self.path}"

    def __repr__(self) -> str:
        return f"SqliteBackend({str(self.path)!r})"


def resolve_backend(db: str | Path | DbBackend) -> DbBackend:
    """A path becomes the sqlite backend; a backend passes through —
    the one place configuration surfaces (CLI ``--db``, the instance
    document's ``dirty`` section) are mapped onto the seam."""
    if isinstance(db, DbBackend):
        return db
    return SqliteBackend(db)


def executemany(conn, sql: str, rows: Sequence[tuple]) -> None:
    """``executemany`` with the empty-batch no-op every dialect wants."""
    if rows:
        conn.executemany(sql, rows)
