"""DB-native dirty data: paged cleaning, reversible archive, undo.

The dirty relation lives in a database table (sqlite first, behind the
:mod:`repro.dirty.backend` seam) and streams through the batch pipeline
in fixed-size pages, so tables larger than memory clean end to end with
bit-identical fixes. Every cell change lands in a reversible archive in
the same file; ``undo`` restores the exact pre-run table,
digest-verified, and dry runs are enforced read-only.
"""

from repro.dirty.archive import CellChange, ChangeArchive, RunRecord
from repro.dirty.backend import DbBackend, SqliteBackend, resolve_backend
from repro.dirty.cleaner import (
    DbCleaner,
    DbCleanResult,
    list_runs,
    resolve_page_rows,
    undo_run,
)
from repro.dirty.table import DEFAULT_PAGE_ROWS, DirtyTable, Page

__all__ = [
    "CellChange",
    "ChangeArchive",
    "RunRecord",
    "DbBackend",
    "SqliteBackend",
    "resolve_backend",
    "DbCleaner",
    "DbCleanResult",
    "list_runs",
    "resolve_page_rows",
    "undo_run",
    "DEFAULT_PAGE_ROWS",
    "DirtyTable",
    "Page",
]
