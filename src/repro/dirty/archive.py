"""Reversible change archive: every cell a clean run touches, on record.

Two tables ride in the same database file as the dirty table itself:

``cerfix_clean_runs``
    One row per clean run — status (``running`` → ``committed`` →
    ``undone``), the run fingerprint (config identity, for resume
    validation), page geometry and progress, and the pre-/post-run
    table digests that anchor undo.

``cerfix_clean_changes``
    One row per changed cell — run id, sequence number, page, row key,
    column, old and new value (JSON-encoded so ``int``/``float``/
    ``str``/``None`` survive verbatim), the rule that forced the fix
    and the trace/span the change was made under.

Undo replays a run's changes backwards inside one transaction and
refuses to run at all if the table moved on since the run committed
(current digest ≠ recorded post-digest) — restoring old values onto a
table someone else edited would corrupt it, not repair it. The restore
only commits after the rebuilt table digest-matches the recorded
pre-run digest, so "undone" means *exactly* the table you started with.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, replace
from typing import Any, Iterable

from repro.dirty.backend import executemany
from repro.dirty.table import DirtyTable
from repro.errors import DirtyDataError

RUNS_TABLE = "cerfix_clean_runs"
CHANGES_TABLE = "cerfix_clean_changes"

#: Run lifecycle states. ``running`` additionally means "crashed" when
#: observed outside a live run — such runs may be undone (only their
#: committed pages have changes on record) but never resumed as if done.
RUN_STATUSES = ("running", "committed", "undone")


@dataclass(frozen=True)
class RunRecord:
    """One clean run as recorded in ``cerfix_clean_runs``."""

    run_id: str
    table_name: str
    status: str
    fingerprint: str
    page_rows: int
    pages_total: int
    pages_done: int
    row_count: int
    pre_digest: str
    post_digest: str | None
    started_at: float
    finished_at: float | None
    changed_cells: int


@dataclass(frozen=True)
class CellChange:
    """One reversible cell change as recorded in ``cerfix_clean_changes``."""

    seq: int
    page: int
    row_key: int
    column: str
    old: Any
    new: Any
    rule_id: str | None
    source: str | None
    trace_id: str | None
    span_id: str | None


def new_run_id() -> str:
    """Sortable-by-start-time, collision-proof run identifier."""
    return f"run-{time.strftime('%Y%m%dT%H%M%S')}-{os.urandom(4).hex()}"


def encode_value(value: Any) -> str:
    return json.dumps(value)


def decode_value(text: str) -> Any:
    return json.loads(text)


class ChangeArchive:
    """The run + change tables of one dirty database.

    Every method takes the caller's connection so archive writes land in
    the same transaction as the dirty-table writes they describe — the
    invariant undo depends on is that a change row exists iff its fix
    was applied.
    """

    def __init__(self, table: DirtyTable):
        self.table = table
        self.backend = table.backend

    # -- schema ------------------------------------------------------------

    def ensure(self, conn) -> None:
        q = self.backend.quote
        conn.execute(
            f"CREATE TABLE IF NOT EXISTS {q(RUNS_TABLE)} ("
            "run_id TEXT PRIMARY KEY, table_name TEXT NOT NULL, "
            "status TEXT NOT NULL, fingerprint TEXT NOT NULL, "
            "page_rows INTEGER NOT NULL, pages_total INTEGER NOT NULL, "
            "pages_done INTEGER NOT NULL, row_count INTEGER NOT NULL, "
            "pre_digest TEXT NOT NULL, post_digest TEXT, "
            "started_at REAL NOT NULL, finished_at REAL, "
            "changed_cells INTEGER NOT NULL)"
        )
        conn.execute(
            f"CREATE TABLE IF NOT EXISTS {q(CHANGES_TABLE)} ("
            "run_id TEXT NOT NULL, seq INTEGER NOT NULL, "
            "page INTEGER NOT NULL, row_key INTEGER NOT NULL, "
            "column_name TEXT NOT NULL, old_value TEXT NOT NULL, "
            "new_value TEXT NOT NULL, rule_id TEXT, source TEXT, "
            "trace_id TEXT, span_id TEXT, "
            "PRIMARY KEY (run_id, seq))"
        )

    # -- run lifecycle -----------------------------------------------------

    def begin_run(self, conn, record: RunRecord) -> None:
        q = self.backend.quote
        conn.execute(
            f"INSERT INTO {q(RUNS_TABLE)} VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
            (
                record.run_id,
                record.table_name,
                record.status,
                record.fingerprint,
                record.page_rows,
                record.pages_total,
                record.pages_done,
                record.row_count,
                record.pre_digest,
                record.post_digest,
                record.started_at,
                record.finished_at,
                record.changed_cells,
            ),
        )

    def record_page(
        self, conn, run_id: str, changes: Iterable[CellChange], pages_done: int
    ) -> int:
        """Archive one page's changes and bump progress; returns cells added."""
        q = self.backend.quote
        rows = [
            (
                run_id,
                c.seq,
                c.page,
                c.row_key,
                c.column,
                encode_value(c.old),
                encode_value(c.new),
                c.rule_id,
                c.source,
                c.trace_id,
                c.span_id,
            )
            for c in changes
        ]
        executemany(
            conn,
            f"INSERT INTO {q(CHANGES_TABLE)} VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
            rows,
        )
        conn.execute(
            f"UPDATE {q(RUNS_TABLE)} SET pages_done = ?, "
            f"changed_cells = changed_cells + ? WHERE run_id = ?",
            (pages_done, len(rows), run_id),
        )
        return len(rows)

    def finish_run(self, conn, run_id: str, post_digest: str) -> None:
        q = self.backend.quote
        conn.execute(
            f"UPDATE {q(RUNS_TABLE)} SET status = 'committed', "
            f"post_digest = ?, finished_at = ? WHERE run_id = ?",
            (post_digest, time.time(), run_id),
        )

    # -- lookups -----------------------------------------------------------

    def _row_to_record(self, row) -> RunRecord:
        return RunRecord(
            run_id=row[0],
            table_name=row[1],
            status=row[2],
            fingerprint=row[3],
            page_rows=int(row[4]),
            pages_total=int(row[5]),
            pages_done=int(row[6]),
            row_count=int(row[7]),
            pre_digest=row[8],
            post_digest=row[9],
            started_at=float(row[10]),
            finished_at=None if row[11] is None else float(row[11]),
            changed_cells=int(row[12]),
        )

    def get_run(self, conn, run_id: str) -> RunRecord:
        q = self.backend.quote
        if not self.backend.table_columns(conn, RUNS_TABLE):
            raise DirtyDataError(
                f"no clean runs recorded in {self.backend.describe()}"
            )
        row = conn.execute(
            f"SELECT * FROM {q(RUNS_TABLE)} WHERE run_id = ?", (run_id,)
        ).fetchone()
        if row is None:
            raise DirtyDataError(
                f"unknown run {run_id!r} in {self.backend.describe()}"
            )
        return self._row_to_record(row)

    def list_runs(self, conn) -> list[RunRecord]:
        q = self.backend.quote
        if not self.backend.table_columns(conn, RUNS_TABLE):
            return []
        rows = conn.execute(
            f"SELECT * FROM {q(RUNS_TABLE)} ORDER BY started_at, run_id"
        ).fetchall()
        return [self._row_to_record(r) for r in rows]

    def changes(self, conn, run_id: str, *, reverse: bool = False) -> list[CellChange]:
        q = self.backend.quote
        order = "DESC" if reverse else "ASC"
        rows = conn.execute(
            f"SELECT seq, page, row_key, column_name, old_value, new_value, "
            f"rule_id, source, trace_id, span_id FROM {q(CHANGES_TABLE)} "
            f"WHERE run_id = ? ORDER BY seq {order}",
            (run_id,),
        ).fetchall()
        return [
            CellChange(
                seq=int(r[0]),
                page=int(r[1]),
                row_key=int(r[2]),
                column=r[3],
                old=decode_value(r[4]),
                new=decode_value(r[5]),
                rule_id=r[6],
                source=r[7],
                trace_id=r[8],
                span_id=r[9],
            )
            for r in rows
        ]

    # -- undo --------------------------------------------------------------

    def undo(self, conn, run_id: str) -> RunRecord:
        """Restore the exact pre-run table, digest-verified both ways.

        A ``committed`` run only unwinds if the table still matches its
        recorded post-run digest; a ``running`` (crashed) run skips that
        check — there is no post-digest, and unwinding its committed
        pages is exactly the recovery it needs. Re-undoing an ``undone``
        run is a no-op.
        """
        record = self.get_run(conn, run_id)
        if record.status == "undone":
            return record
        if record.status == "committed":
            current = self.table.digest(conn)
            if current != record.post_digest:
                raise DirtyDataError(
                    f"refusing to undo {run_id}: table {record.table_name!r} was "
                    f"modified after the run (digest {current[:12]}… != recorded "
                    f"{str(record.post_digest)[:12]}…); undo would corrupt it"
                )
        changes = self.changes(conn, run_id, reverse=True)
        q = self.backend.quote
        conn.execute("BEGIN")
        try:
            self.table.apply_cell_writes(
                conn, [(c.row_key, c.column, c.old) for c in changes]
            )
            restored = self.table.digest(conn)
            if restored != record.pre_digest:
                raise DirtyDataError(
                    f"undo of {run_id} did not reproduce the pre-run table "
                    f"(digest {restored[:12]}… != recorded "
                    f"{record.pre_digest[:12]}…); rolling back"
                )
            conn.execute(
                f"UPDATE {q(RUNS_TABLE)} SET status = 'undone', finished_at = ? "
                f"WHERE run_id = ?",
                (time.time(), run_id),
            )
            conn.execute("COMMIT")
        except BaseException:
            conn.execute("ROLLBACK")
            raise
        return replace(record, status="undone")
