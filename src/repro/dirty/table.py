"""The dirty relation as a database table, streamed in pages.

A :class:`DirtyTable` wraps one table behind the DB-API seam
(:mod:`repro.dirty.backend`) and serves it to the batch pipeline as a
sequence of fixed-size :class:`Page` s — each a bounded
:class:`~repro.relational.relation.Relation` plus the stable row keys
its rows were read under. Reads use keyset pagination on the integer
row key (``WHERE rowid > last ORDER BY rowid LIMIT n``), so streaming a
table never materialises more than one page and never degrades into
O(n²) OFFSET scans; row keys are how every later write (fix commits,
undo restores) addresses its cells, and they are UPDATE-stable by
construction.

The table digest — SHA-256 over the column names and every
``(row key, row)`` in key order, computed page by page — is the
identity undo verifies against: it pins both content *and* row-key
binding, so a table that was mutated, even back to equal-looking
values under different keys, cannot silently pass.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator, Sequence

from repro.dirty.backend import DbBackend, executemany, require_db_scalar, resolve_backend
from repro.errors import DirtyDataError
from repro.relational.relation import Relation
from repro.relational.schema import Schema

#: Page size used when neither the caller nor ``CERFIX_PAGE_ROWS`` says
#: otherwise — small enough to bound memory, large enough for the batch
#: planner's dedup to bite within a page.
DEFAULT_PAGE_ROWS = 4096

#: Page size for internal full-table sweeps (digest, whole-table reads).
_SCAN_ROWS = 2048


@dataclass(frozen=True)
class Page:
    """One fixed-size slice of the dirty table."""

    index: int
    keys: tuple[int, ...]
    relation: Relation

    def __len__(self) -> int:
        return len(self.keys)


class DirtyTable:
    """One database table of dirty tuples, read and written in pages.

    ``DirtyTable(db, table)`` attaches to an existing table (``db`` is a
    path — sqlite — or any :class:`~repro.dirty.backend.DbBackend`);
    :meth:`create` materialises a relation as a fresh table. All reads
    stream; only :meth:`read_relation` (tests, small tables) loads the
    whole table.
    """

    def __init__(self, db: str | Path | DbBackend, table: str = "dirty"):
        self.backend = resolve_backend(db)
        self.table = table

    # -- construction ------------------------------------------------------

    @classmethod
    def create(
        cls,
        db: str | Path | DbBackend,
        relation: Relation,
        table: str = "dirty",
    ) -> "DirtyTable":
        """Write ``relation`` as a fresh table (replacing any old one)."""
        self = cls(db, table)
        q = self.backend.quote
        cols = ", ".join(q(n) for n in relation.schema.names)
        marks = ", ".join("?" for _ in relation.schema.names)
        rows = relation.raw_tuples()
        for pos, row in enumerate(rows):
            for v in row:
                require_db_scalar(v, f"dirty row {pos}")
        conn = self.backend.connect()
        try:
            conn.execute("BEGIN")
            conn.execute(f"DROP TABLE IF EXISTS {q(table)}")
            conn.execute(f"CREATE TABLE {q(table)} ({cols})")
            executemany(
                conn, f"INSERT INTO {q(table)} ({cols}) VALUES ({marks})", rows
            )
            conn.execute("COMMIT")
        finally:
            conn.close()
        return self

    # -- shape -------------------------------------------------------------

    def columns(self, conn) -> list[str]:
        cols = self.backend.table_columns(conn, self.table)
        if not cols:
            raise DirtyDataError(
                f"no table {self.table!r} in {self.backend.describe()}"
            )
        return cols

    def schema(self, conn) -> Schema:
        """The table's columns as a relation schema (named after the table)."""
        return Schema(self.table, self.columns(conn))

    def count(self, conn) -> int:
        q = self.backend.quote
        (n,) = conn.execute(f"SELECT COUNT(*) FROM {q(self.table)}").fetchone()
        return int(n)

    # -- paged reads -------------------------------------------------------

    def pages(
        self,
        conn,
        page_rows: int,
        *,
        schema: Schema | None = None,
        skip_pages: int = 0,
    ) -> Iterator[Page]:
        """Stream the table as fixed-size pages, in row-key order.

        ``skip_pages`` seeks past already-committed pages on resume with
        one boundary lookup instead of re-reading them (page boundaries
        are stable across a run: fixes UPDATE in place, never insert or
        delete, so row ``k * page_rows`` stays page ``k``'s first row).
        """
        if page_rows < 1:
            raise DirtyDataError(f"page_rows must be >= 1, got {page_rows}")
        q = self.backend.quote
        key = self.backend.row_key
        cols = schema.names if schema is not None else self.columns(conn)
        schema = schema if schema is not None else Schema(self.table, cols)
        select = ", ".join(q(c) for c in cols)
        last = None
        if skip_pages:
            row = conn.execute(
                f"SELECT {key} FROM {q(self.table)} ORDER BY {key} "
                f"LIMIT 1 OFFSET ?",
                (skip_pages * page_rows - 1,),
            ).fetchone()
            if row is None:
                return
            last = row[0]
        index = skip_pages
        while True:
            where = "" if last is None else f"WHERE {key} > ?"
            params: tuple = (page_rows,) if last is None else (last, page_rows)
            rows = conn.execute(
                f"SELECT {key}, {select} FROM {q(self.table)} {where} "
                f"ORDER BY {key} LIMIT ?",
                params,
            ).fetchall()
            if not rows:
                return
            keys = tuple(r[0] for r in rows)
            yield Page(index, keys, Relation(schema, [tuple(r[1:]) for r in rows]))
            last = keys[-1]
            index += 1
            if len(rows) < page_rows:
                return

    def read_relation(self, conn, schema: Schema | None = None) -> Relation:
        """The whole table as one relation (tests and small tables only)."""
        cols = schema.names if schema is not None else self.columns(conn)
        schema = schema if schema is not None else Schema(self.table, cols)
        out = Relation(schema)
        for page in self.pages(conn, _SCAN_ROWS, schema=schema):
            out.extend(page.relation.raw_tuples())
        return out

    # -- identity ----------------------------------------------------------

    def digest(self, conn) -> str:
        """SHA-256 over column names and every (row key, row), key order."""
        sha = hashlib.sha256()
        cols = self.columns(conn)
        sha.update(repr(tuple(cols)).encode("utf-8"))
        schema = Schema(self.table, cols)
        for page in self.pages(conn, _SCAN_ROWS, schema=schema):
            raw = page.relation.raw_tuples()
            for key, row in zip(page.keys, raw):
                sha.update(repr((key, row)).encode("utf-8"))
        return sha.hexdigest()

    # -- writes ------------------------------------------------------------

    def apply_cell_writes(
        self, conn, writes: Sequence[tuple[int, str, Any]]
    ) -> None:
        """Apply ``(row key, column, value)`` cell writes in order.

        Runs inside the caller's transaction — the cleaner brackets a
        page's fixes with its archive rows, undo brackets a whole run —
        so a crash can never leave half a batch applied.
        """
        q = self.backend.quote
        key = self.backend.row_key
        for row_key, column, value in writes:
            require_db_scalar(value, f"row {row_key}.{column}")
            conn.execute(
                f"UPDATE {q(self.table)} SET {q(column)} = ? WHERE {key} = ?",
                (value, row_key),
            )

    def __repr__(self) -> str:
        return f"DirtyTable({self.backend.describe()!r}, table={self.table!r})"
