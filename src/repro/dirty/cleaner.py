"""The paged DB cleaner: certain fixes over a table that outgrows RAM.

:class:`DbCleaner` streams the dirty table through the existing batch
pipeline one fixed-size page at a time, so peak memory is bounded by
``page_rows`` regardless of table size. Each page runs through
:meth:`~repro.batch.pipeline.BatchCleaner.clean` (dedup, sharding,
probe caching and checkpointing all apply within the page), then the
page's cell fixes, their reversible archive rows and the run's progress
counter commit in **one** database transaction — the run record in
``cerfix_clean_runs`` is therefore always consistent with the table:
a crash at any instant leaves either a fully-committed page or none of
it, and :func:`undo_run` can unwind exactly what was applied.

Two recovery layers compose on resume (``resume=<run-id>``): whole
pages already committed are skipped by the run record's ``pages_done``,
and the in-flight page re-runs against its *per-page checkpoint
journal*, so shards that finished before the crash are replayed, not
recomputed — mid-page resume, as the batch suite pins down. Page
journals live under ``<db>.clean-journal/<run-id>/`` and the directory
is removed once the run commits: a leftover journal directory always
means an interrupted run.

Because fixes are *certain* (scheduling-independent, as the batch
pipeline guarantees), the paged path produces bit-identical output to
the in-memory path; the conformance tests assert it. Per-tuple audit
ids follow the row key (``r<rowid>``), so audit replay and the archive
agree on which physical row every change touched.
"""

from __future__ import annotations

import math
import os
import shutil
import time
from dataclasses import dataclass, field
from hashlib import sha256
from pathlib import Path

from repro.batch.pipeline import BatchCleaner
from repro.dirty.archive import CellChange, ChangeArchive, RunRecord, new_run_id
from repro.dirty.table import DEFAULT_PAGE_ROWS, DirtyTable, Page
from repro.errors import DirtyDataError
from repro.obs import trace
from repro.obs.metrics import get_registry
from repro.relational.schema import Schema

#: Environment override for the page size — CI forces a tiny value so
#: multi-page streaming and resume exercise on small fixtures.
PAGE_ROWS_ENV = "CERFIX_PAGE_ROWS"


def resolve_page_rows(page_rows: int | None) -> int:
    """Explicit argument → ``CERFIX_PAGE_ROWS`` → default."""
    if page_rows is None:
        raw = os.environ.get(PAGE_ROWS_ENV, "").strip()
        if raw:
            try:
                page_rows = int(raw)
            except ValueError:
                raise DirtyDataError(
                    f"{PAGE_ROWS_ENV}={raw!r} is not an integer"
                ) from None
        else:
            page_rows = DEFAULT_PAGE_ROWS
    if page_rows < 1:
        raise DirtyDataError(f"page size must be >= 1, got {page_rows}")
    return page_rows


@dataclass
class DbCleanResult:
    """Outcome of one paged clean (or dry run) over a database table."""

    run_id: str | None
    table: str
    db: str
    rows: int
    pages: int
    page_rows: int
    changed_cells: int
    dry_run: bool
    resumed_pages: int
    elapsed_seconds: float
    #: Per-cell changes, populated on dry runs only — committed runs
    #: keep them in the database archive, which scales; a report does not.
    changes: list[CellChange] = field(default_factory=list)

    def describe(self) -> str:
        what = "dry run" if self.dry_run else f"run {self.run_id}"
        line = (
            f"{what}: {self.rows} rows in {self.pages} pages "
            f"(page_rows={self.page_rows}), {self.changed_cells} cells "
            f"{'would change' if self.dry_run else 'changed'} "
            f"in {self.elapsed_seconds:.2f}s"
        )
        if self.resumed_pages:
            line += f"; resumed past {self.resumed_pages} committed pages"
        return line


class DbCleaner:
    """Paged cleaning of one :class:`~repro.dirty.table.DirtyTable`."""

    def __init__(
        self,
        batch: BatchCleaner,
        table: DirtyTable,
        *,
        page_rows: int | None = None,
        journal_dir: str | Path | None = None,
    ):
        self.batch = batch
        self.table = table
        self.archive = ChangeArchive(table)
        self.page_rows = resolve_page_rows(page_rows)
        if journal_dir is not None:
            self.journal_dir = Path(journal_dir)
        elif hasattr(table.backend, "path"):
            self.journal_dir = Path(f"{table.backend.path}.clean-journal")
        else:
            self.journal_dir = None

    # -- public ------------------------------------------------------------

    def clean(
        self,
        *,
        workers: int = 1,
        backend: str = "thread",
        shards: int | None = None,
        dedupe: bool = True,
        validated: tuple[str, ...] = (),
        max_rounds: int | None = None,
        dry_run: bool = False,
        resume: str | None = None,
    ) -> DbCleanResult:
        """Clean the table in pages; commit fixes + archive, or report only.

        ``dry_run=True`` opens the database **read-only** (any write
        would raise), records nothing, and returns every would-be change
        in the result. ``resume`` continues an interrupted run by id.
        """
        if dry_run and resume is not None:
            raise DirtyDataError("cannot combine dry_run with resume")
        start = time.perf_counter()
        conn = self.table.backend.connect(readonly=dry_run)
        try:
            schema = self._page_schema(conn)
            row_count = self.table.count(conn)
            pages_total = math.ceil(row_count / self.page_rows)
            with trace.span(
                "clean-run",
                db=self.table.backend.describe(),
                table=self.table.table,
                rows=row_count,
                pages=pages_total,
                page_rows=self.page_rows,
                dry_run=dry_run,
            ):
                if dry_run:
                    return self._dry_run(
                        conn,
                        schema,
                        row_count,
                        pages_total,
                        start,
                        workers=workers,
                        backend=backend,
                        shards=shards,
                        dedupe=dedupe,
                        validated=validated,
                        max_rounds=max_rounds,
                    )
                return self._commit_run(
                    conn,
                    schema,
                    row_count,
                    pages_total,
                    start,
                    workers=workers,
                    backend=backend,
                    shards=shards,
                    dedupe=dedupe,
                    validated=validated,
                    max_rounds=max_rounds,
                    resume=resume,
                )
        finally:
            conn.close()

    # -- the two run shapes ------------------------------------------------

    def _dry_run(
        self,
        conn,
        schema: Schema,
        row_count: int,
        pages_total: int,
        start: float,
        *,
        workers: int,
        backend: str,
        shards: int | None,
        dedupe: bool,
        validated: tuple[str, ...],
        max_rounds: int | None,
    ) -> DbCleanResult:
        changes: list[CellChange] = []
        pages_seen = 0
        for page in self.table.pages(conn, self.page_rows, schema=schema):
            page_changes = self._clean_page(
                page,
                seq_start=len(changes),
                workers=workers,
                backend=backend,
                shards=shards,
                dedupe=dedupe,
                validated=validated,
                max_rounds=max_rounds,
                journal_path=None,
            )
            changes.extend(page_changes)
            pages_seen += 1
        reg = get_registry()
        reg.inc("cerfix.dbclean.dry_runs")
        reg.inc("cerfix.dbclean.pages", pages_seen)
        reg.inc("cerfix.dbclean.rows", row_count)
        return DbCleanResult(
            run_id=None,
            table=self.table.table,
            db=self.table.backend.describe(),
            rows=row_count,
            pages=pages_seen,
            page_rows=self.page_rows,
            changed_cells=len(changes),
            dry_run=True,
            resumed_pages=0,
            elapsed_seconds=time.perf_counter() - start,
            changes=changes,
        )

    def _commit_run(
        self,
        conn,
        schema: Schema,
        row_count: int,
        pages_total: int,
        start: float,
        *,
        workers: int,
        backend: str,
        shards: int | None,
        dedupe: bool,
        validated: tuple[str, ...],
        max_rounds: int | None,
        resume: str | None,
    ) -> DbCleanResult:
        self.archive.ensure(conn)
        fingerprint = self._fingerprint(validated, max_rounds, row_count)
        if resume is not None:
            record = self._resumable(conn, resume, fingerprint, row_count)
            run_id = record.run_id
            skip = record.pages_done
            seq = changed = record.changed_cells
        else:
            run_id = new_run_id()
            self.archive.begin_run(
                conn,
                RunRecord(
                    run_id=run_id,
                    table_name=self.table.table,
                    status="running",
                    fingerprint=fingerprint,
                    page_rows=self.page_rows,
                    pages_total=pages_total,
                    pages_done=0,
                    row_count=row_count,
                    pre_digest=self.table.digest(conn),
                    post_digest=None,
                    started_at=time.time(),
                    finished_at=None,
                    changed_cells=0,
                ),
            )
            skip = seq = changed = 0
        pages_run = rows_run = cells_run = 0
        for page in self.table.pages(
            conn, self.page_rows, schema=schema, skip_pages=skip
        ):
            page_changes = self._clean_page(
                page,
                seq_start=seq,
                workers=workers,
                backend=backend,
                shards=shards,
                dedupe=dedupe,
                validated=validated,
                max_rounds=max_rounds,
                journal_path=self._page_journal(run_id, page.index),
            )
            conn.execute("BEGIN")
            try:
                self.table.apply_cell_writes(
                    conn, [(c.row_key, c.column, c.new) for c in page_changes]
                )
                self.archive.record_page(
                    conn, run_id, page_changes, pages_done=page.index + 1
                )
                conn.execute("COMMIT")
            except BaseException:
                conn.execute("ROLLBACK")
                raise
            self._drop_page_journal(run_id, page.index)
            seq += len(page_changes)
            changed += len(page_changes)
            pages_run += 1
            rows_run += len(page)
            cells_run += len(page_changes)
        post_digest = self.table.digest(conn)
        self.archive.finish_run(conn, run_id, post_digest)
        self._drop_run_journal(run_id)
        reg = get_registry()
        reg.inc("cerfix.dbclean.runs")
        reg.inc("cerfix.dbclean.pages", pages_run)
        reg.inc("cerfix.dbclean.rows", rows_run)
        reg.inc("cerfix.dbclean.changed_cells", cells_run)
        return DbCleanResult(
            run_id=run_id,
            table=self.table.table,
            db=self.table.backend.describe(),
            rows=row_count,
            pages=skip + pages_run,
            page_rows=self.page_rows,
            changed_cells=changed,
            dry_run=False,
            resumed_pages=skip,
            elapsed_seconds=time.perf_counter() - start,
        )

    # -- per-page ----------------------------------------------------------

    def _clean_page(
        self,
        page: Page,
        *,
        seq_start: int,
        workers: int,
        backend: str,
        shards: int | None,
        dedupe: bool,
        validated: tuple[str, ...],
        max_rounds: int | None,
        journal_path: Path | None,
    ) -> list[CellChange]:
        """Run one page through the batch pipeline; diff input vs output.

        The page's relation is read in input-schema column order, and
        the batch assembler emits rows in that same order, so the diff
        is positional. Change provenance (rule, source, span) comes from
        the audit events the batch replay just recorded under this
        page's row-key tuple ids.
        """
        names = page.relation.schema.names
        with trace.span("page", page=page.index, rows=len(page)):
            result = self.batch.clean(
                page.relation,
                None,
                workers=workers,
                backend=backend,
                shards=shards,
                dedupe=dedupe,
                validated=validated,
                journal_path=journal_path,
                tuple_ids=[f"r{k}" for k in page.keys],
                max_rounds=max_rounds,
                root_span=False,
            )
        before = page.relation.raw_tuples()
        after = result.relation.raw_tuples()
        changes: list[CellChange] = []
        seq = seq_start
        for key, old_row, new_row in zip(page.keys, before, after):
            if old_row == new_row:
                continue
            provenance = self._provenance(f"r{key}")
            for col, old, new in zip(names, old_row, new_row):
                if old == new:
                    continue
                rule_id, source, trace_id, span_id = provenance.get(
                    col, (None, None, None, None)
                )
                changes.append(
                    CellChange(
                        seq=seq,
                        page=page.index,
                        row_key=key,
                        column=col,
                        old=old,
                        new=new,
                        rule_id=rule_id,
                        source=source,
                        trace_id=trace_id,
                        span_id=span_id,
                    )
                )
                seq += 1
        return changes

    def _provenance(self, tuple_id: str) -> dict[str, tuple]:
        """attr → (rule_id, source, trace_id, span_id) of the *final*
        audit event — the one whose ``new`` survived into the output."""
        out: dict[str, tuple] = {}
        for e in self.batch.audit.by_tuple(tuple_id):
            out[e.attr] = (e.rule_id, e.source, e.trace_id, e.span_id)
        return out

    # -- run identity and resume -------------------------------------------

    def _page_schema(self, conn) -> Schema:
        """The table read in input-schema column order (validated)."""
        want = self.batch.ruleset.input_schema.names
        got = self.table.columns(conn)
        if set(got) != set(want):
            raise DirtyDataError(
                f"table {self.table.table!r} does not match the input schema: "
                f"missing {sorted(set(want) - set(got))}, "
                f"unexpected {sorted(set(got) - set(want))}"
            )
        return Schema(self.table.table, want)

    def _fingerprint(
        self, validated: tuple[str, ...], max_rounds: int | None, row_count: int
    ) -> str:
        """Identity a resume must match: engine configuration (rules,
        master content, mode, strategy, ...) plus the page geometry the
        committed-pages offset depends on."""
        context = self.batch._context_key(validated, max_rounds, include_master=True)
        raw = repr((context, self.table.table, self.page_rows, row_count))
        return sha256(raw.encode("utf-8")).hexdigest()

    def _resumable(
        self, conn, run_id: str, fingerprint: str, row_count: int
    ) -> RunRecord:
        record = self.archive.get_run(conn, run_id)
        if record.status != "running":
            raise DirtyDataError(
                f"run {run_id} is {record.status}, not resumable (only an "
                f"interrupted 'running' run can resume)"
            )
        if record.page_rows != self.page_rows:
            raise DirtyDataError(
                f"refusing to resume {run_id}: it ran with page_rows="
                f"{record.page_rows}, this run has {self.page_rows}"
            )
        if record.fingerprint != fingerprint or record.row_count != row_count:
            raise DirtyDataError(
                f"refusing to resume {run_id}: the table or the engine "
                f"configuration changed since the run started"
            )
        return record

    # -- page journals -----------------------------------------------------

    def _page_journal(self, run_id: str, page_index: int) -> Path | None:
        if self.journal_dir is None:
            return None
        path = self.journal_dir / run_id / f"page-{page_index}.journal"
        path.parent.mkdir(parents=True, exist_ok=True)
        return path

    def _drop_page_journal(self, run_id: str, page_index: int) -> None:
        path = self._page_journal(run_id, page_index)
        if path is not None and path.exists():
            path.unlink()

    def _drop_run_journal(self, run_id: str) -> None:
        if self.journal_dir is None:
            return
        shutil.rmtree(self.journal_dir / run_id, ignore_errors=True)
        try:
            self.journal_dir.rmdir()  # only removes when empty
        except OSError:
            pass


def undo_run(table: DirtyTable, run_id: str) -> RunRecord:
    """Restore the exact pre-run table for ``run_id``, digest-verified."""
    archive = ChangeArchive(table)
    conn = table.backend.connect()
    try:
        with trace.span(
            "undo-run", db=table.backend.describe(), run_id=run_id
        ):
            record = archive.undo(conn, run_id)
    finally:
        conn.close()
    get_registry().inc("cerfix.dbclean.undos")
    return record


def list_runs(table: DirtyTable) -> list[RunRecord]:
    """All recorded clean runs of this database, oldest first."""
    archive = ChangeArchive(table)
    conn = table.backend.connect(readonly=True)
    try:
        return archive.list_runs(conn)
    finally:
        conn.close()
