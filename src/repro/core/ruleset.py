"""Rule sets: validated, immutable collections of editing rules.

A :class:`RuleSet` binds rules to the input and master schemas, checks
well-formedness once at construction, and offers the lookup structures the
chase and the static analyses need (rules by target, the set of machine-
fixable attributes, master index specifications).
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.errors import RuleError
from repro.core.rule import EditingRule
from repro.relational.schema import Schema


class RuleSet:
    """An immutable, schema-validated set of editing rules.

    Rules are kept in a canonical deterministic order (insertion order,
    which for the paper scenario is ϕ1…ϕ9); the chase's determinism relies
    on it, and property tests check that for consistent rule sets the
    *outcome* does not depend on it.
    """

    __slots__ = ("input_schema", "master_schema", "_rules", "_by_id", "_by_target", "_analysis_cache")

    def __init__(
        self,
        rules: Iterable[EditingRule],
        input_schema: Schema,
        master_schema: Schema,
    ):
        self.input_schema = input_schema
        self.master_schema = master_schema
        self._rules = tuple(rules)
        self._by_id: dict[str, EditingRule] = {}
        self._by_target: dict[str, list[EditingRule]] = {}
        #: Memo for static analyses over this (immutable) rule set — e.g.
        #: :func:`repro.core.inference.mandatory_attributes`, which the
        #: suggestion engine consults on every monitor round.
        self._analysis_cache: dict = {}
        for rule in self._rules:
            if rule.rule_id in self._by_id:
                raise RuleError(f"duplicate rule id {rule.rule_id!r}")
            rule.validate(input_schema, master_schema)
            self._by_id[rule.rule_id] = rule
            self._by_target.setdefault(rule.target, []).append(rule)

    # -- lookups -----------------------------------------------------------

    @property
    def rules(self) -> tuple[EditingRule, ...]:
        return self._rules

    def get(self, rule_id: str) -> EditingRule:
        try:
            return self._by_id[rule_id]
        except KeyError:
            raise RuleError(f"no rule with id {rule_id!r} (have {sorted(self._by_id)})") from None

    def by_target(self, attr: str) -> tuple[EditingRule, ...]:
        """The rules that can fix ``attr``."""
        return tuple(self._by_target.get(attr, ()))

    @property
    def targets(self) -> frozenset[str]:
        """Attributes some rule can fix."""
        return frozenset(self._by_target)

    def index_specs(self) -> set[tuple[tuple[str, ...], tuple[str, ...]]]:
        """The master indexes needed to apply every rule in O(1)."""
        specs = set()
        for rule in self._rules:
            spec = rule.index_spec()
            if spec is not None:
                specs.add(spec)
        return specs

    # -- derivation --------------------------------------------------------

    def add(self, *rules: EditingRule) -> "RuleSet":
        """A new rule set with extra rules appended."""
        return RuleSet(self._rules + rules, self.input_schema, self.master_schema)

    def remove(self, *rule_ids: str) -> "RuleSet":
        """A new rule set without the named rules."""
        drop = set(rule_ids)
        missing = drop - set(self._by_id)
        if missing:
            raise RuleError(f"cannot remove unknown rules {sorted(missing)}")
        return RuleSet(
            (r for r in self._rules if r.rule_id not in drop),
            self.input_schema,
            self.master_schema,
        )

    def reordered(self, rule_ids: Iterable[str]) -> "RuleSet":
        """A new rule set with the given rule order (must be a permutation)."""
        order = list(rule_ids)
        if sorted(order) != sorted(self._by_id):
            raise RuleError("reordered() requires a permutation of the existing rule ids")
        return RuleSet((self._by_id[r] for r in order), self.input_schema, self.master_schema)

    # -- dunder ------------------------------------------------------------

    def __iter__(self) -> Iterator[EditingRule]:
        return iter(self._rules)

    def __len__(self) -> int:
        return len(self._rules)

    def __contains__(self, rule_id: object) -> bool:
        return rule_id in self._by_id

    def __repr__(self) -> str:
        return (
            f"RuleSet({len(self._rules)} rules over {self.input_schema.name!r}"
            f" / master {self.master_schema.name!r})"
        )
