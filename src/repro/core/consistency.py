"""Static analysis of editing rules (paper §2, Rule engine item (1)).

"CerFix automatically tests whether the specified eRs make sense w.r.t.
master data, i.e., the rules do not contradict each other and will lead
to a unique fix for any input tuple."

Three analyses, mirroring that sentence:

* :func:`find_ambiguities` — per rule, master keys whose matches disagree
  on the correction value. Such keys can never produce a fix (the
  uniqueness gate blocks the rule), so they are coverage holes worth
  surfacing to whoever curates the master data.
* :func:`find_pairwise_conflicts` — pairs of rules that, on some input
  tuple, *simultaneously* prescribe different values for the same
  attribute. Witnesses are constructed from pairs of master tuples plus
  pattern constants and fresh padding, then **confirmed** against the
  chase's own applicability test, so every reported conflict is real.
  Deciding full chase-order consistency is coNP-complete ([7]); this
  enumeration is complete for exact-operator rules (genericity) and a
  documented heuristic under fuzzy operators.
* :func:`check_consistency` — the umbrella check the demo's rule manager
  runs: ambiguities + pairwise conflicts + randomised differential
  testing of chase order (Church–Rosser check on sampled tuples).

All of it is read-only over the rule set and master data.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Any, Iterable, Mapping

from repro.core.certainty import fresh, value_partition
from repro.core.chase import AppStatus, applicable, chase
from repro.core.pattern import Eq, PatternTuple
from repro.core.rule import Constant, EditingRule
from repro.core.ruleset import RuleSet
from repro.master.manager import MasterDataManager


@dataclass(frozen=True)
class AmbiguityWitness:
    """A master key on which one rule cannot decide a unique fix."""

    rule_id: str
    key: tuple
    values: tuple[Any, ...]

    def describe(self) -> str:
        return (
            f"rule {self.rule_id}: master key {self.key!r} matches tuples with "
            f"distinct corrections {list(self.values)!r} — the rule never fires on it"
        )


@dataclass(frozen=True)
class RuleConflict:
    """Two rules prescribing different values for the same attribute.

    ``witness`` is a (partial) input tuple on which both rules are safely
    applicable yet disagree; completing it with fresh values yields a full
    counterexample tuple. ``same_entity`` distinguishes the two tiers:

    * ``True`` — the witness draws its master evidence from at most one
      master tuple (or from constant rules). Such a tuple can describe a
      real entity, so the rules genuinely contradict each other: this is
      an inconsistency.
    * ``False`` — the witness needs validated values taken from *two
      different* master tuples (e.g. person A's zip plus person B's area
      code). Under the master-data closed-world assumption no correct
      tuple looks like that, so this is a warning: the rules only clash
      if a user validates an impossible combination (the chase still
      detects and reports the clash at run time).
    """

    attr: str
    rule1: str
    rule2: str
    value1: Any
    value2: Any
    witness: tuple[tuple[str, Any], ...]
    same_entity: bool = True

    def describe(self) -> str:
        w = {a: v for a, v in self.witness}
        tier = "conflict" if self.same_entity else "cross-entity conflict"
        return (
            f"{tier} on {self.attr}: rule {self.rule1} fixes it to {self.value1!r} "
            f"but rule {self.rule2} fixes it to {self.value2!r} on any tuple with {w!r}"
        )


@dataclass(frozen=True)
class OrderDivergence:
    """Two chase orders reaching different final tuples (Church–Rosser
    violation) on a sampled input."""

    values: tuple[tuple[str, Any], ...]
    order1: tuple[str, ...]
    order2: tuple[str, ...]
    attr: str
    result1: Any
    result2: Any


@dataclass
class ConsistencyReport:
    """The combined outcome of the static analyses."""

    conflicts: tuple[RuleConflict, ...]
    cross_entity_conflicts: tuple[RuleConflict, ...]
    ambiguities: tuple[AmbiguityWitness, ...]
    order_divergences: tuple[OrderDivergence, ...]
    pairs_checked: int
    samples_checked: int
    exhaustive_pairs: bool = True

    @property
    def is_consistent(self) -> bool:
        """No same-entity conflicts and no order divergences.

        Ambiguities are coverage holes, not contradictions; cross-entity
        witnesses are warnings (see :class:`RuleConflict.same_entity`) —
        neither makes the rule set inconsistent.
        """
        return not self.conflicts and not self.order_divergences

    def describe(self) -> str:
        lines = [
            f"consistent: {self.is_consistent} "
            f"({self.pairs_checked} rule/master pairs, {self.samples_checked} sampled chases; "
            f"{len(self.cross_entity_conflicts)} cross-entity warnings, "
            f"{len(self.ambiguities)} ambiguity warnings)"
        ]
        lines += ["  " + c.describe() for c in self.conflicts]
        lines += ["  " + c.describe() for c in self.cross_entity_conflicts]
        lines += ["  " + a.describe() for a in self.ambiguities]
        for d in self.order_divergences:
            lines.append(
                f"  order divergence on {d.attr}: {d.result1!r} vs {d.result2!r}"
            )
        return "\n".join(lines)


def find_ambiguities(ruleset: RuleSet, master: MasterDataManager) -> list[AmbiguityWitness]:
    """Master keys on which a rule's matches disagree on the correction."""
    out = []
    for rule in ruleset:
        for key, values in sorted(master.ambiguous_keys(rule).items(), key=repr):
            out.append(AmbiguityWitness(rule.rule_id, key, values))
    return out


def _merge_witness(
    base: dict[str, Any], updates: Mapping[str, Any]
) -> dict[str, Any] | None:
    """Merge forced attribute values; ``None`` when they contradict."""
    merged = dict(base)
    for attr, value in updates.items():
        if attr in merged and merged[attr] != value:
            return None
        merged[attr] = value
    return merged


def _pattern_witness(
    pattern: PatternTuple, witness: dict[str, Any], partition: Mapping[str, tuple]
) -> dict[str, Any] | None:
    """Extend ``witness`` so it satisfies ``pattern``, or ``None``.

    Forced values must already satisfy their conditions; unforced pattern
    attributes take a satisfying constant (for ``Eq``) or a fresh value
    (for ``NotIn`` — fresh always satisfies it).
    """
    extended = dict(witness)
    for attr, cond in pattern.items():
        if attr in extended:
            if not cond.matches(extended[attr]):
                return None
            continue
        if isinstance(cond, Eq):
            extended[attr] = cond.value
        else:
            extended[attr] = fresh(attr)
    return extended


def find_pairwise_conflicts(
    ruleset: RuleSet,
    master: MasterDataManager,
    *,
    pair_budget: int = 2_000_000,
) -> tuple[list[RuleConflict], list[RuleConflict], int, bool]:
    """Search for input tuples on which two rules disagree.

    For every pair of rules with a common target, candidate witnesses are
    built from every pair of master tuples (constant-sourced rules
    contribute a single pseudo-candidate): the witness forces ``t[X1]``
    and ``t[X2]`` to the master values, merges the two patterns, and is
    then confirmed by running both rules' *actual* applicability test —
    the same code path the chase uses — so the uniqueness gate and
    operator normalisation are honoured.

    Returns ``(conflicts, cross_entity_conflicts, pairs_checked,
    exhaustive)``; the first list holds genuine (same-entity)
    contradictions, the second closed-world warnings (see
    :class:`RuleConflict`). One witness per rule pair and tier is kept.
    """
    conflicts: list[RuleConflict] = []
    cross_entity: list[RuleConflict] = []
    pairs_checked = 0
    exhaustive = True
    partition = value_partition(ruleset, master)
    raw = master.relation.tuples()
    schema = master.relation.schema

    def source_candidates(rule: EditingRule) -> Iterable[tuple[dict[str, Any], Any, int | None]]:
        """(forced input values, prescribed value, master position)."""
        if isinstance(rule.source, Constant):
            yield {}, rule.source.value, None
            return
        col = schema.position(rule.source.name)
        positions = [schema.position(a) for a in rule.m_attrs]
        seen: set[tuple] = set()
        for pos, t in enumerate(raw):
            key = tuple(t[p] for p in positions)
            forced = dict(zip(rule.lhs_attrs, key))
            dedup = (tuple(sorted(forced.items(), key=repr)), t[col])
            if dedup in seen:
                continue
            seen.add(dedup)
            yield forced, t[col], pos

    by_target: dict[str, list[EditingRule]] = {}
    for rule in ruleset:
        by_target.setdefault(rule.target, []).append(rule)

    for attr, rules in sorted(by_target.items()):
        for r1, r2 in itertools.combinations(rules, 2):
            merged_pattern = r1.pattern.merge(r2.pattern)
            if merged_pattern is None:
                continue  # patterns contradict: the rules can never co-fire
            found_same = found_cross = False
            for (forced1, v1, pos1), (forced2, v2, pos2) in itertools.product(
                source_candidates(r1), source_candidates(r2)
            ):
                pairs_checked += 1
                if pairs_checked > pair_budget:
                    exhaustive = False
                    return conflicts, cross_entity, pairs_checked, exhaustive
                same_entity = pos1 is None or pos2 is None or pos1 == pos2
                if (found_same or same_entity is False) and (found_cross or same_entity):
                    continue
                if v1 == v2:
                    continue
                witness = _merge_witness(forced1, forced2)
                if witness is None:
                    continue
                witness = _pattern_witness(merged_pattern, witness, partition)
                if witness is None:
                    continue
                validated = frozenset(witness) | r1.reads | r2.reads
                full = dict(witness)
                for a in validated:
                    full.setdefault(a, fresh(a))
                app1 = applicable(r1, full, validated, master)
                app2 = applicable(r2, full, validated, master)
                if (
                    app1.status is AppStatus.READY
                    and app2.status is AppStatus.READY
                    and app1.value != app2.value
                ):
                    conflict = RuleConflict(
                        attr=attr,
                        rule1=r1.rule_id,
                        rule2=r2.rule_id,
                        value1=app1.value,
                        value2=app2.value,
                        witness=tuple(sorted(full.items(), key=repr)),
                        same_entity=same_entity,
                    )
                    if same_entity:
                        conflicts.append(conflict)
                        found_same = True
                    else:
                        cross_entity.append(conflict)
                        found_cross = True
                    if found_same and found_cross:
                        break
    return conflicts, cross_entity, pairs_checked, exhaustive


def _sample_tuple(
    rng: random.Random,
    ruleset: RuleSet,
    master: MasterDataManager,
    partition: Mapping[str, tuple],
) -> dict[str, Any]:
    """A random synthetic input tuple: partition values or fresh, biased
    towards master-derived values so that rules actually fire."""
    values: dict[str, Any] = {}
    for attr in ruleset.input_schema.names:
        pool = list(partition.get(attr, ()))
        if pool and rng.random() < 0.85:
            values[attr] = rng.choice(pool)
        else:
            values[attr] = fresh(attr)
    return values


def differential_order_test(
    ruleset: RuleSet,
    master: MasterDataManager,
    *,
    samples: int = 50,
    orders: int = 4,
    seed: int = 7,
) -> tuple[list[OrderDivergence], int]:
    """Chase sampled tuples under shuffled rule orders; compare outcomes.

    For a consistent rule set the chase is Church–Rosser, so all orders
    must agree on the final tuple *and* validated set. Divergences are
    concrete inconsistency evidence complementary to the pairwise search.

    Runs in which the chase *detected* a conflict are skipped: a conflict
    means the sampled validations were mutually impossible (cross-entity),
    the clash was reported, and order-dependence of the surviving value is
    expected — see :class:`RuleConflict.same_entity`.
    """
    rng = random.Random(seed)
    partition = value_partition(ruleset, master)
    rule_ids = [r.rule_id for r in ruleset]
    divergences: list[OrderDivergence] = []
    checked = 0
    for _ in range(samples):
        values = _sample_tuple(rng, ruleset, master, partition)
        validated = frozenset(
            a for a in ruleset.input_schema.names if rng.random() < 0.5
        )
        baseline = None
        base_order: tuple[str, ...] = tuple(rule_ids)
        conflicted = False
        for i in range(orders):
            order = list(rule_ids)
            if i:
                rng.shuffle(order)
            result = chase(values, validated, ruleset, master, rule_order=order)
            checked += 1
            if result.conflicts:
                conflicted = True
                break
            outcome = (result.values, result.validated)
            if baseline is None:
                baseline = outcome
                base_order = tuple(order)
            elif outcome != baseline:
                diff_attr = next(
                    a
                    for a in ruleset.input_schema.names
                    if baseline[0].get(a) != result.values.get(a)
                    or (a in baseline[1]) != (a in result.validated)
                )
                divergences.append(
                    OrderDivergence(
                        values=tuple(sorted(values.items(), key=repr)),
                        order1=base_order,
                        order2=tuple(order),
                        attr=diff_attr,
                        result1=baseline[0].get(diff_attr),
                        result2=result.values.get(diff_attr),
                    )
                )
                break
    return divergences, checked


def check_consistency(
    ruleset: RuleSet,
    master: MasterDataManager,
    *,
    samples: int = 50,
    seed: int = 7,
    pair_budget: int = 2_000_000,
) -> ConsistencyReport:
    """The full static check the demo's rule manager runs on import."""
    ambiguities = find_ambiguities(ruleset, master)
    conflicts, cross_entity, pairs_checked, exhaustive = find_pairwise_conflicts(
        ruleset, master, pair_budget=pair_budget
    )
    divergences, sampled = differential_order_test(
        ruleset, master, samples=samples, seed=seed
    )
    return ConsistencyReport(
        conflicts=tuple(conflicts),
        cross_entity_conflicts=tuple(cross_entity),
        ambiguities=tuple(ambiguities),
        order_divergences=tuple(divergences),
        pairs_checked=pairs_checked,
        samples_checked=sampled,
        exhaustive_pairs=exhaustive,
    )
