"""The rule engine's inference system (paper §2, Rule engine item (2)).

Given that some attributes of a tuple are correct, derive what other
attributes can be validated by editing rules and master data. Two
flavours live here:

* **syntactic** closures, which ignore values (used for pruning and for
  schema-level reasoning), and
* the **reachable** closure for a concrete tuple, the optimistic bound
  the data monitor uses when computing new suggestions.

The exact, value-quantified analysis is in :mod:`repro.core.certainty`.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping

import networkx as nx

from repro.core.ruleset import RuleSet
from repro.relational.schema import Schema


def potential_closure(validated: Iterable[str], ruleset: RuleSet) -> frozenset[str]:
    """The attributes *potentially* validatable from ``validated``.

    Pure syntax: a rule contributes its target as soon as everything it
    reads is in the closure, ignoring patterns and master coverage. This
    is an upper bound on what any chase can achieve — if it does not reach
    the full schema, no region on ``validated`` can be certain, which
    makes it the region finder's cheap pruning test.
    """
    closure = set(validated)
    changed = True
    while changed:
        changed = False
        for rule in ruleset:
            if rule.target not in closure and rule.reads <= closure:
                closure.add(rule.target)
                changed = True
    return frozenset(closure)


def reachable_closure(
    values: Mapping[str, Any],
    validated: Iterable[str],
    ruleset: RuleSet,
) -> frozenset[str]:
    """Optimistic closure for a concrete tuple.

    Like :func:`potential_closure`, but a rule whose pattern constrains an
    attribute whose value is *currently known* (i.e. the attribute was in
    the initial validated set, so validation cannot change it) must match
    that value. Pattern conditions on attributes that would be fixed by
    other rules first are assumed satisfiable (their future values are
    unknown), hence "optimistic": an upper bound that is tight in
    practice and cheap enough to run inside every monitor round.
    """
    base = set(validated)
    closure = set(base)
    changed = True
    while changed:
        changed = False
        for rule in ruleset:
            if rule.target in closure or not rule.reads <= closure:
                continue
            known = {a: values[a] for a in rule.pattern.attrs if a in base and a in values}
            if all(rule.pattern.condition(a).matches(v) for a, v in known.items()):
                closure.add(rule.target)
                changed = True
    return frozenset(closure)


def mandatory_attributes(ruleset: RuleSet, schema: Schema | None = None) -> frozenset[str]:
    """Attributes no rule can ever *initially* validate.

    An attribute is mandatory when every rule targeting it is
    self-normalising (reads the attribute itself) — including the
    vacuous case of no rule at all. A self-normalising rule fires only
    once its target is already validated, so it can canonicalise but
    never bootstrap: the user must validate the attribute first, in
    every certain region and every suggestion. For the paper's rules
    ϕ1–ϕ9 this is exactly {AC, phn, type, item}, the Fig. 3(a) initial
    suggestion (zip escapes via ϕ8, which reads only AC/phn/type).
    """
    schema = schema or ruleset.input_schema
    cache = getattr(ruleset, "_analysis_cache", None)
    key = ("mandatory", schema.names)
    if cache is not None:
        hit = cache.get(key)
        if hit is not None:
            return hit
    result = frozenset(
        a
        for a in schema.names
        if all(r.is_self_normalizing for r in ruleset.by_target(a))
    )
    if cache is not None:
        cache[key] = result
    return result


def syntactically_certain(
    attrs: Iterable[str], ruleset: RuleSet, schema: Schema | None = None
) -> bool:
    """Necessary condition for ``attrs`` to support a certain region."""
    schema = schema or ruleset.input_schema
    return potential_closure(attrs, ruleset) >= frozenset(schema.names)


def dependency_graph(ruleset: RuleSet) -> "nx.DiGraph":
    """The attribute dependency graph of a rule set.

    Nodes are input attributes; an edge ``A → B`` labelled with rule ids
    means some rule reads ``A`` and fixes ``B``. Used by the explorer to
    display rule structure and by the consistency checker to bound chase
    depth / detect derivation cycles.
    """
    graph = nx.DiGraph()
    graph.add_nodes_from(ruleset.input_schema.names)
    for rule in ruleset:
        for read in sorted(rule.reads):
            if graph.has_edge(read, rule.target):
                graph[read][rule.target]["rules"].append(rule.rule_id)
            else:
                graph.add_edge(read, rule.target, rules=[rule.rule_id])
    return graph


def derivation_cycles(ruleset: RuleSet) -> list[list[str]]:
    """Attribute cycles in the dependency graph (excluding self-loops of
    self-normalising rules, which are benign by construction)."""
    graph = dependency_graph(ruleset)
    graph.remove_edges_from(nx.selfloop_edges(graph))
    return [list(c) for c in nx.simple_cycles(graph)]


def chase_depth_bound(ruleset: RuleSet) -> int:
    """An upper bound on productive chase sweeps: the longest derivation
    chain in the (acyclic part of the) dependency graph, plus one."""
    graph = dependency_graph(ruleset)
    graph.remove_edges_from(nx.selfloop_edges(graph))
    if not nx.is_directed_acyclic_graph(graph):
        return len(ruleset.input_schema)
    return nx.dag_longest_path_length(graph) + 1
