"""Regions and certain regions (paper §2, "Region finder").

A region is a pair ``(Z, Tc)`` of an attribute list and a pattern
tableau. When certified against a rule set and master data it becomes a
*certain region*: validating ``t[Z]`` for any tuple matching ``Tc``
warrants a certain fix for the whole tuple.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from repro.errors import PatternError
from repro.core.certainty import CertaintyMode
from repro.core.pattern import EMPTY_PATTERN, PatternTuple


@dataclass(frozen=True)
class Region:
    """``(Z, Tc)`` — attributes plus a pattern tableau.

    The tableau must be non-empty; the unconditional region has the
    single empty pattern (matches everything). Patterns may constrain
    attributes outside ``Z`` only if the caller knows those values are
    meaningful at match time; the region finder never produces such
    patterns.
    """

    attrs: tuple[str, ...]
    tableau: tuple[PatternTuple, ...] = (EMPTY_PATTERN,)

    def __post_init__(self):
        if not self.attrs:
            raise PatternError("a region needs at least one attribute")
        if len(set(self.attrs)) != len(self.attrs):
            raise PatternError(f"duplicate attributes in region {self.attrs}")
        if not self.tableau:
            raise PatternError("a region's tableau must contain at least one pattern")
        object.__setattr__(self, "attrs", tuple(sorted(self.attrs)))

    @property
    def size(self) -> int:
        """The number of attributes to validate — the paper's rank key."""
        return len(self.attrs)

    @property
    def is_unconditional(self) -> bool:
        return all(len(p) == 0 for p in self.tableau)

    def matches(self, values: Mapping[str, Any]) -> bool:
        """True iff ``values`` matches some pattern of the tableau."""
        return any(p.matches(values) for p in self.tableau)

    def compatible_with(self, values: Mapping[str, Any], known: set[str]) -> bool:
        """True iff some pattern could still match given only ``known``
        attribute values — conditions on unknown attributes are treated as
        satisfiable. Used to pick regions for suggestions mid-session."""
        for pattern in self.tableau:
            ok = True
            for attr, cond in pattern.items():
                if attr in known and attr in values and not cond.matches(values[attr]):
                    ok = False
                    break
            if ok:
                return True
        return False

    def render(self) -> str:
        z = "{" + ", ".join(self.attrs) + "}"
        if self.is_unconditional:
            return f"Z={z}, Tc=(_)"
        pats = "; ".join(p.render() for p in self.tableau)
        return f"Z={z}, Tc=[{pats}]"

    def __str__(self) -> str:
        return self.render()


@dataclass(frozen=True)
class RankedRegion:
    """A certified region with its certification metadata.

    ``coverage`` is the fraction of the quantified universe the tableau
    accepts (1.0 for an unconditional certain region); the region finder
    ranks ascending by size then descending by coverage, matching the
    paper's "ranked ascendingly by the number of attributes".
    """

    region: Region
    mode: CertaintyMode
    coverage: float = 1.0
    combos_checked: int = 0
    exhaustive: bool = True

    @property
    def size(self) -> int:
        return self.region.size

    def sort_key(self) -> tuple:
        return (self.region.size, -self.coverage, self.region.attrs)

    def render(self) -> str:
        return (
            f"{self.region.render()}  [mode={self.mode.value}, "
            f"coverage={self.coverage:.2f}, checked={self.combos_checked}]"
        )
