"""The region finder (paper Fig. 1): top-k certain regions.

Searches attribute sets ascending by size (the paper ranks regions
"ascendingly by the number of attributes"), prunes with two sound
filters — every region must contain the *mandatory* attributes (those no
rule can fix), and must be syntactically closed (the rule graph can in
principle reach every attribute) — then certifies candidates with the
exact machinery of :mod:`repro.core.certainty`.

When an attribute set is not certain unconditionally, the finder harvests
the *safe* value combinations (those whose chase completes) and condenses
them into a pattern tableau: per-attribute generalisation rewrites groups
of safe combinations into wildcard / ``≠c`` / constant conditions while
preserving the matched set exactly. This is how the demo's ``AC ≠ 0800``
pattern (rule ϕ9) resurfaces in the region tableau.
"""

from __future__ import annotations

import itertools
from typing import Any, Iterable, Mapping, Sequence

from repro.errors import BudgetExceededError
from repro.core.certainty import (
    CertaintyMode,
    FreshValue,
    Scenario,
    candidate_combos,
    fresh,
    value_partition,
)
from repro.core.chase import chase
from repro.core.inference import mandatory_attributes, syntactically_certain
from repro.core.pattern import (
    EMPTY_PATTERN,
    WILDCARD,
    Condition,
    Eq,
    NotIn,
    PatternTuple,
    Wildcard,
)
from repro.core.region import RankedRegion, Region
from repro.core.ruleset import RuleSet
from repro.master.manager import MasterDataManager


def harvest_safe_combos(
    attrs: Sequence[str],
    ruleset: RuleSet,
    master: MasterDataManager,
    *,
    mode: CertaintyMode = CertaintyMode.STRICT,
    scenario: Scenario | None = None,
    max_combos: int = 200_000,
) -> tuple[list[dict[str, Any]], dict[str, list[Any]], int]:
    """Enumerate the mode's universe for ``attrs``; keep chase-safe combos.

    Returns ``(safe, universe, total)`` where ``universe`` maps each
    attribute to the distinct candidate values that actually occurred in
    the enumeration (the domain over which tableau condensation reasons).
    """
    attrs = tuple(attrs)
    schema = ruleset.input_schema
    partition = value_partition(ruleset, master)
    safe: list[dict[str, Any]] = []
    universe: dict[str, list[Any]] = {a: [] for a in attrs}
    total = 0
    for combo in candidate_combos(
        attrs,
        EMPTY_PATTERN,
        ruleset,
        master,
        mode=mode,
        scenario=scenario,
        partition=partition,
        max_combos=max_combos,
    ):
        total += 1
        for a in attrs:
            if combo[a] not in universe[a]:
                universe[a].append(combo[a])
        values = {n: combo.get(n, fresh(n)) for n in schema.names}
        result = chase(values, attrs, ruleset, master)
        if result.is_complete:
            safe.append(dict(combo))
    return safe, universe, total


# --------------------------------------------------------------------------
# Tableau condensation
# --------------------------------------------------------------------------


def _coverage(cond: Condition, universe: Sequence[Any]) -> frozenset[int]:
    """Indices of ``universe`` values matched by ``cond``."""
    return frozenset(i for i, v in enumerate(universe) if cond.matches(v))


def _condition_for(values: frozenset[int], universe: Sequence[Any]) -> Condition | None:
    """The single condition matching exactly ``values`` ⊆ universe, if one
    exists in the Eq / NotIn / wildcard language; ``None`` otherwise."""
    n = len(universe)
    if len(values) == n:
        return WILDCARD
    missing = [universe[i] for i in range(n) if i not in values]
    fresh_in = any(isinstance(universe[i], FreshValue) for i in values)
    fresh_missing = any(isinstance(v, FreshValue) for v in missing)
    if fresh_in and not fresh_missing:
        # complement is a set of constants -> expressible as NotIn
        return NotIn(missing)
    if len(values) == 1:
        v = universe[next(iter(values))]
        if not isinstance(v, FreshValue):
            return Eq(v)
    return None


def condense_tableau(
    attrs: Sequence[str],
    safe_combos: Iterable[Mapping[str, Any]],
    universe: Mapping[str, Sequence[Any]],
) -> tuple[PatternTuple, ...]:
    """Condense safe value combinations into an exact pattern tableau.

    Every combination is first turned into a row of conditions (a fresh
    sentinel becomes ``NotIn(all constants)`` — "any out-of-partition
    value"). Then, repeatedly: group rows agreeing on all attributes but
    one, union their coverage on that attribute, and replace the group by
    one row whenever the union is expressible as a single condition.
    The matched set over the universe is preserved exactly at every step
    (property-tested), so the resulting tableau accepts precisely the
    safe combinations.
    """
    attrs = tuple(attrs)
    uni = {a: list(universe[a]) for a in attrs}

    rows: set[tuple[frozenset[int], ...]] = set()
    for combo in safe_combos:
        row = []
        for a in attrs:
            row.append(frozenset([uni[a].index(combo[a])]))
        rows.add(tuple(row))
    if not rows:
        return ()

    changed = True
    while changed:
        changed = False
        for pos in range(len(attrs)):
            groups: dict[tuple, set[frozenset[int]]] = {}
            for row in rows:
                key = row[:pos] + row[pos + 1 :]
                groups.setdefault(key, set()).add(row[pos])
            new_rows: set[tuple[frozenset[int], ...]] = set()
            for key, coverages in groups.items():
                union = frozenset().union(*coverages)
                merged = _condition_for(union, uni[attrs[pos]])
                if merged is not None and len(coverages) > 1:
                    new_rows.add(key[:pos] + (union,) + key[pos:])
                    changed = True
                else:
                    for cov in coverages:
                        new_rows.add(key[:pos] + (cov,) + key[pos:])
            rows = new_rows

    patterns = []
    for row in sorted(rows, key=repr):
        conds: dict[str, Condition] = {}
        for a, cov in zip(attrs, row):
            cond = _condition_for(cov, uni[a])
            # Row cells are always expressible: initial cells are singletons
            # (Eq for a constant, NotIn(constants) for the fresh sentinel,
            # wildcard when the universe is the lone fresh value), and the
            # merge loop only accepts expressible unions.
            assert cond is not None, f"inexpressible condition for {a}: {cov}"
            if not isinstance(cond, Wildcard):
                conds[a] = cond
        patterns.append(PatternTuple(conds))
    # Deduplicate while keeping deterministic order.
    seen = set()
    out = []
    for p in patterns:
        if p not in seen:
            seen.add(p)
            out.append(p)
    return tuple(out)


# --------------------------------------------------------------------------
# Top-k search
# --------------------------------------------------------------------------


def find_certain_regions(
    ruleset: RuleSet,
    master: MasterDataManager,
    *,
    k: int = 5,
    max_size: int | None = None,
    mode: CertaintyMode = CertaintyMode.STRICT,
    scenario: Scenario | None = None,
    max_combos: int = 200_000,
    generalize: bool = True,
    subset_budget: int = 50_000,
) -> list[RankedRegion]:
    """Compute the top-k certain regions, ranked ascending by size.

    Search proceeds level-by-level over attribute-set size starting from
    the mandatory core. At each level, candidate sets that fail the
    syntactic-closure prune are skipped; survivors are certified exactly.
    An attribute set certified *unconditionally* (wildcard tableau)
    suppresses all its strict supersets — they could only tie on a worse
    rank. ``generalize=False`` keeps only unconditional regions.
    """
    schema = ruleset.input_schema
    names = schema.names
    mandatory = sorted(mandatory_attributes(ruleset, schema))
    optional = [a for a in names if a not in mandatory]
    limit = max_size if max_size is not None else len(names)
    found: list[RankedRegion] = []
    unconditional: list[frozenset[str]] = []
    examined = 0

    for extra in range(len(optional) + 1):
        size = len(mandatory) + extra
        if size > limit:
            break
        level: list[RankedRegion] = []
        for pick in itertools.combinations(optional, extra):
            examined += 1
            if examined > subset_budget:
                raise BudgetExceededError(
                    f"region search examined more than subset_budget={subset_budget} attribute sets"
                )
            z = tuple(sorted(mandatory + list(pick)))
            zset = frozenset(z)
            if any(w < zset for w in unconditional):
                continue
            if not syntactically_certain(z, ruleset, schema):
                continue
            safe, universe, total = harvest_safe_combos(
                z, ruleset, master, mode=mode, scenario=scenario, max_combos=max_combos
            )
            if total == 0 or not safe:
                continue
            if len(safe) == total:
                level.append(
                    RankedRegion(Region(z), mode, coverage=1.0, combos_checked=total)
                )
                unconditional.append(zset)
                continue
            if not generalize:
                continue
            tableau = condense_tableau(z, safe, universe)
            if not tableau:
                continue
            level.append(
                RankedRegion(
                    Region(z, tableau),
                    mode,
                    coverage=len(safe) / total,
                    combos_checked=total,
                )
            )
        level.sort(key=lambda r: r.sort_key())
        found.extend(level)
        if len(found) >= k:
            break
    return found[:k]
