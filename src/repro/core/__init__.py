"""The paper's primary contribution: editing rules, the chase that applies
them with master data, certainty analysis, certain regions and the static
analyses of the rule engine (consistency, inference)."""

from repro.core.pattern import WILDCARD, Condition, Eq, NotIn, Wildcard, PatternTuple
from repro.core.rule import Constant, EditingRule, MasterColumn, MatchPair
from repro.core.ruleset import RuleSet
from repro.core.chase import (
    Applicability,
    AppStatus,
    ChaseResult,
    ConflictWitness,
    FixStep,
    applicable,
    chase,
)
from repro.core.certainty import (
    CertaintyMode,
    CertaintyReport,
    FreshValue,
    fresh,
    guaranteed_validated,
    is_certain_region,
    value_partition,
)
from repro.core.inference import (
    dependency_graph,
    mandatory_attributes,
    potential_closure,
    reachable_closure,
    syntactically_certain,
)
from repro.core.region import RankedRegion, Region
from repro.core.region_finder import condense_tableau, find_certain_regions
from repro.core.consistency import (
    AmbiguityWitness,
    ConsistencyReport,
    RuleConflict,
    check_consistency,
    find_ambiguities,
    find_pairwise_conflicts,
)

__all__ = [
    "WILDCARD",
    "Condition",
    "Eq",
    "NotIn",
    "Wildcard",
    "PatternTuple",
    "Constant",
    "EditingRule",
    "MasterColumn",
    "MatchPair",
    "RuleSet",
    "Applicability",
    "AppStatus",
    "ChaseResult",
    "ConflictWitness",
    "FixStep",
    "applicable",
    "chase",
    "CertaintyMode",
    "CertaintyReport",
    "FreshValue",
    "fresh",
    "guaranteed_validated",
    "is_certain_region",
    "value_partition",
    "dependency_graph",
    "mandatory_attributes",
    "potential_closure",
    "reachable_closure",
    "syntactically_certain",
    "RankedRegion",
    "Region",
    "condense_tableau",
    "find_certain_regions",
    "AmbiguityWitness",
    "ConsistencyReport",
    "RuleConflict",
    "check_consistency",
    "find_ambiguities",
    "find_pairwise_conflicts",
]
