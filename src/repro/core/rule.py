"""Editing rules — the paper's central notion.

An editing rule ``φ: ((X, Xm) → (B, Bm), tp)`` says: if an input tuple
``t`` agrees with a master tuple ``s`` on the correspondence ``X ↔ Xm``
and ``t`` matches the pattern ``tp``, then ``t[B] := s[Bm]`` — *provided*
``t[X ∪ Xp]`` is validated. We additionally support:

* **match operators** per correspondence pair (``phn ~digits~ Mphn``),
  the equality/similarity operators of MD-derived rules;
* **constant-sourced rules** (``B := c``), which is how rules derived from
  constant CFDs are expressed (the 2010 companion paper, §7 of [7]);
* **self-normalising rules** (``B ∈ X``), the demo's ϕ1: a validated but
  non-canonical value is rewritten to the master's canonical form.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Any

from repro.errors import RuleError
from repro.core.pattern import EMPTY_PATTERN, PatternTuple
from repro.relational.normalize import NORMALIZERS
from repro.relational.schema import Schema


@dataclass(frozen=True)
class MatchPair:
    """One correspondence ``t[t_attr] ≈op s[m_attr]`` of a rule's LHS."""

    t_attr: str
    m_attr: str
    op: str = "exact"

    def __post_init__(self):
        if self.op not in NORMALIZERS:
            raise RuleError(f"match {self.t_attr}~{self.m_attr}: unknown operator {self.op!r}")

    def render(self) -> str:
        if self.op == "exact":
            return f"{self.t_attr}={self.m_attr}"
        return f"{self.t_attr}~{self.op}~{self.m_attr}"


@dataclass(frozen=True)
class MasterColumn:
    """Fix source: take the value of master attribute ``name``."""

    name: str

    def render(self) -> str:
        return f"master.{self.name}"


@dataclass(frozen=True)
class Constant:
    """Fix source: a fixed constant (rules derived from constant CFDs)."""

    value: Any

    def render(self) -> str:
        return f"const {self.value!r}"


@dataclass(frozen=True)
class EditingRule:
    """``((X, Xm) → (B, Bm), tp)`` with optional match operators.

    ``match`` may be empty only for constant-sourced rules (there is
    nothing to look up in the master data). ``pattern`` defaults to the
    empty pattern ``()``.
    """

    rule_id: str
    match: tuple[MatchPair, ...]
    target: str
    source: MasterColumn | Constant
    pattern: PatternTuple = field(default=EMPTY_PATTERN)
    description: str = ""

    def __post_init__(self):
        if not self.rule_id:
            raise RuleError("rule_id must be non-empty")
        if isinstance(self.source, MasterColumn) and not self.match:
            raise RuleError(
                f"rule {self.rule_id}: a master-sourced rule needs at least one match pair"
            )
        seen = set()
        for pair in self.match:
            if pair.t_attr in seen:
                raise RuleError(f"rule {self.rule_id}: duplicate match attribute {pair.t_attr!r}")
            seen.add(pair.t_attr)

    # -- derived views -----------------------------------------------------
    # cached_property, not property: the chase consults these for every
    # rule on every sweep, and rebuilding the tuples/frozensets there
    # dominated the profile. Caching is safe on a frozen dataclass (the
    # cache writes to __dict__ directly) because every source field is
    # immutable.

    @cached_property
    def lhs_attrs(self) -> tuple[str, ...]:
        """X — the input attributes matched against master data."""
        return tuple(p.t_attr for p in self.match)

    @cached_property
    def m_attrs(self) -> tuple[str, ...]:
        """Xm — the master attributes matched against."""
        return tuple(p.m_attr for p in self.match)

    @cached_property
    def ops(self) -> tuple[str, ...]:
        """The match operator of each correspondence pair."""
        return tuple(p.op for p in self.match)

    @property
    def pattern_attrs(self) -> tuple[str, ...]:
        """Xp — the attributes constrained by the pattern."""
        return self.pattern.attrs

    @cached_property
    def reads(self) -> frozenset[str]:
        """X ∪ Xp — every input attribute the rule looks at.

        All of these must be validated before the rule may fire; this is
        what makes the resulting fix *certain*.
        """
        return frozenset(self.lhs_attrs) | frozenset(self.pattern_attrs)

    @cached_property
    def sorted_reads(self) -> tuple[str, ...]:
        """``reads`` in sorted order — the chase reports missing
        attributes in this order on every not-ready test."""
        return tuple(sorted(self.reads))

    @cached_property
    def has_pattern(self) -> bool:
        """True when the pattern constrains at least one attribute —
        lets the chase skip the match call for ``tp = ()`` rules."""
        return len(self.pattern) > 0

    @cached_property
    def is_constant(self) -> bool:
        return isinstance(self.source, Constant)

    @cached_property
    def is_self_normalizing(self) -> bool:
        """True when the rule reads its own target (demo rule ϕ1).

        Such a rule may rewrite an already-validated value to the master's
        canonical form; any other rule prescribing a change to a validated
        attribute is a conflict.
        """
        return self.target in self.reads

    def index_spec(self) -> tuple[tuple[str, ...], tuple[str, ...]] | None:
        """The master index (attrs, ops) this rule probes, if any."""
        if self.is_constant or not self.match:
            return None
        return (self.m_attrs, self.ops)

    # -- validation -------------------------------------------------------

    def validate(self, input_schema: Schema, master_schema: Schema) -> None:
        """Check every attribute reference against the two schemas."""
        input_schema.require([p.t_attr for p in self.match])
        input_schema.require(self.pattern.attrs)
        input_schema.require([self.target])
        if isinstance(self.source, MasterColumn):
            master_schema.require(self.m_attrs + (self.source.name,))
        elif self.match:
            master_schema.require(self.m_attrs)

    # -- display ----------------------------------------------------------

    def render(self) -> str:
        """The textual form accepted by :mod:`repro.rules.parser`.

        >>> from repro.core.pattern import Eq, PatternTuple
        >>> EditingRule("p4", (MatchPair("phn", "Mphn"),), "FN",
        ...             MasterColumn("FN"), PatternTuple({"type": Eq("2")})).render()
        'p4: (phn=Mphn) -> FN := master.FN if (type=2)'
        """
        lhs = "(" + ", ".join(p.render() for p in self.match) + ")"
        text = f"{self.rule_id}: {lhs} -> {self.target} := {self.source.render()}"
        if len(self.pattern):
            text += f" if {self.pattern.render()}"
        return text

    def __str__(self) -> str:
        return self.render()
