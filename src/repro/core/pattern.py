"""Pattern tuples: the condition language of editing rules and regions.

A pattern tuple ``tp`` constrains some input attributes with one condition
each. The paper's condition language (Fig. 2 and [7]) has constants,
negated constants (``≠ 0800`` on ϕ9) and wildcards; we implement exactly
that, generalising negation to a set (:class:`NotIn`) because pattern
*conjunction* — needed by the consistency checker and by tableau
condensation — is closed under it (``≠a ∧ ≠b`` = ``NotIn {a, b}``).

Conditions evaluate plain values; they never look at schemas. The chase
guarantees separately that a rule's pattern attributes are validated
before the pattern is read.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Mapping

from repro.errors import PatternError


class Condition:
    """Base class for per-attribute conditions."""

    __slots__ = ()

    def matches(self, value: Any) -> bool:
        raise NotImplementedError

    def allowed(self, candidates: Iterable[Any]) -> list[Any]:
        """The subset of ``candidates`` satisfying this condition."""
        return [v for v in candidates if self.matches(v)]

    def merge(self, other: "Condition") -> "Condition | None":
        """The conjunction of two conditions, or ``None`` if unsatisfiable."""
        raise NotImplementedError

    def constants(self) -> frozenset:
        """Constants mentioned by the condition (feeds value partitions)."""
        return frozenset()

    def render(self) -> str:
        raise NotImplementedError


class Wildcard(Condition):
    """Matches anything. There is a single instance, :data:`WILDCARD`."""

    __slots__ = ()

    def matches(self, value: Any) -> bool:
        return True

    def merge(self, other: Condition) -> Condition:
        return other

    def render(self) -> str:
        return "_"

    def __repr__(self) -> str:
        return "Wildcard()"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Wildcard)

    def __hash__(self) -> int:
        return hash("Wildcard")


WILDCARD = Wildcard()


class Eq(Condition):
    """``= c``: the attribute must equal a constant."""

    __slots__ = ("value",)

    def __init__(self, value: Any):
        self.value = value

    def matches(self, value: Any) -> bool:
        return value == self.value

    def merge(self, other: Condition) -> Condition | None:
        if isinstance(other, Wildcard):
            return self
        if isinstance(other, Eq):
            return self if other.value == self.value else None
        if isinstance(other, NotIn):
            return self if self.value not in other.values else None
        raise PatternError(f"cannot merge Eq with {type(other).__name__}")

    def constants(self) -> frozenset:
        return frozenset([self.value])

    def render(self) -> str:
        return f"={self.value}"

    def __repr__(self) -> str:
        return f"Eq({self.value!r})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Eq) and other.value == self.value

    def __hash__(self) -> int:
        return hash(("Eq", self.value))


class NotIn(Condition):
    """``∉ S``: the attribute must avoid a finite set of constants.

    ``NotIn({c})`` is the paper's ``≠ c``.
    """

    __slots__ = ("values",)

    def __init__(self, values: Iterable[Any]):
        self.values = frozenset(values)
        if not self.values:
            raise PatternError("NotIn requires at least one constant; use WILDCARD instead")

    def matches(self, value: Any) -> bool:
        return value not in self.values

    def merge(self, other: Condition) -> Condition | None:
        if isinstance(other, Wildcard):
            return self
        if isinstance(other, Eq):
            return other.merge(self)
        if isinstance(other, NotIn):
            return NotIn(self.values | other.values)
        raise PatternError(f"cannot merge NotIn with {type(other).__name__}")

    def constants(self) -> frozenset:
        return self.values

    def render(self) -> str:
        if len(self.values) == 1:
            return f"!={next(iter(self.values))}"
        return "!=" + "|".join(sorted(map(str, self.values)))

    def __repr__(self) -> str:
        return f"NotIn({sorted(map(repr, self.values))})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, NotIn) and other.values == self.values

    def __hash__(self) -> int:
        return hash(("NotIn", self.values))


def Neq(value: Any) -> NotIn:
    """Convenience for the paper's ``≠ c``."""
    return NotIn([value])


class PatternTuple:
    """A conjunction of per-attribute conditions.

    Wildcards are not stored: an attribute absent from the mapping is
    unconstrained. The empty pattern tuple (``PatternTuple()``) matches
    every tuple — the paper writes it ``tp = ()`` (rule ϕ1, Example 2).

    >>> tp = PatternTuple({"type": Eq("2")})
    >>> tp.matches({"type": "2", "zip": "EH8 4AH"})
    True
    >>> tp.matches({"type": "1"})
    False
    """

    __slots__ = ("_conditions",)

    def __init__(self, conditions: Mapping[str, Condition] | None = None):
        conds: dict[str, Condition] = {}
        for attr, cond in (conditions or {}).items():
            if not isinstance(cond, Condition):
                raise PatternError(f"pattern condition for {attr!r} must be a Condition, got {cond!r}")
            if not isinstance(cond, Wildcard):
                conds[attr] = cond
        self._conditions = dict(sorted(conds.items()))

    @property
    def attrs(self) -> tuple[str, ...]:
        """The constrained attributes (Xp), sorted."""
        return tuple(self._conditions)

    def condition(self, attr: str) -> Condition:
        """The condition on ``attr`` (:data:`WILDCARD` if unconstrained)."""
        return self._conditions.get(attr, WILDCARD)

    def matches(self, values: Mapping[str, Any]) -> bool:
        """True iff every constrained attribute is present and satisfies
        its condition."""
        for attr, cond in self._conditions.items():
            if attr not in values or not cond.matches(values[attr]):
                return False
        return True

    def merge(self, other: "PatternTuple") -> "PatternTuple | None":
        """The conjunction of two pattern tuples, ``None`` if unsatisfiable.

        Unsatisfiability here is syntactic (``=a ∧ =b``, ``=a ∧ ≠a``);
        over infinite domains every NotIn conjunction is satisfiable.
        """
        merged = dict(self._conditions)
        for attr, cond in other._conditions.items():
            combined = merged.get(attr, WILDCARD).merge(cond)
            if combined is None:
                return None
            merged[attr] = combined
        return PatternTuple(merged)

    def restrict(self, attrs: Iterable[str]) -> "PatternTuple":
        """The pattern projected onto ``attrs``."""
        keep = set(attrs)
        return PatternTuple({a: c for a, c in self._conditions.items() if a in keep})

    def constants_on(self, attr: str) -> frozenset:
        """Constants the pattern mentions for ``attr``."""
        return self.condition(attr).constants()

    def items(self) -> Iterator[tuple[str, Condition]]:
        return iter(self._conditions.items())

    def render(self, attrs: Iterable[str] | None = None) -> str:
        """Human-readable form, e.g. ``(type=2, AC!=0800)`` or ``()``."""
        if attrs is None:
            parts = [f"{a}{c.render()}" for a, c in self._conditions.items()]
        else:
            parts = [f"{a}{self.condition(a).render()}" for a in attrs]
        return "(" + ", ".join(parts) + ")"

    def __len__(self) -> int:
        return len(self._conditions)

    def __bool__(self) -> bool:
        return True  # even the empty pattern is a meaningful object

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PatternTuple):
            return NotImplemented
        return self._conditions == other._conditions

    def __hash__(self) -> int:
        return hash(tuple(self._conditions.items()))

    def __repr__(self) -> str:
        return f"PatternTuple({self._conditions!r})"


#: The pattern that matches everything — the paper's ``tp = ()``.
EMPTY_PATTERN = PatternTuple()
