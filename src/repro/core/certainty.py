"""Deciding certainty: will the chase fix *every* tuple in a region?

A region ``(Z, Tc)`` is **certain** when any input tuple whose ``Z``
attributes are validated and match a pattern of ``Tc`` is chased to a
complete, conflict-free fix. The quantifier ranges over infinitely many
tuples, but the chase observes ``t[Z]`` only through

* equality (under a match operator) with master-column values reachable
  via some rule correspondence, and
* comparison with pattern constants,

so two values outside that finite set are chase-indistinguishable
(*genericity*). Per attribute we therefore enumerate a finite **value
partition** — the relevant constants plus one :class:`FreshValue`
sentinel standing for "any other value" — and the product enumeration is
an *exact* decision procedure. [7] shows the underlying problem is
intractable in general; exactness here costs exponential time in ``|Z|``
and partition width, guarded by an explicit combination budget.

Three quantification modes (see DESIGN.md §1):

* ``STRICT`` — the open-world definition of [7]: all partition values,
  including fresh ones. Certain regions must pin master coverage in
  their tableaux.
* ``ANCHORED`` — closed-world approximation: candidate values are taken
  per master tuple (a correct value describes some real entity, and
  master data records the entities). Conservative — it may reject
  regions a deployed system would accept — and therefore still sound.
* ``SCENARIO`` — exact for a caller-supplied universe of correct tuples
  (the scenario knows, e.g., that ``type=1`` means ``phn`` is the home
  phone). This is what a production CerFix instance effectively uses.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Iterator, Mapping, Sequence

from repro.errors import BudgetExceededError
from repro.core.chase import chase
from repro.core.pattern import EMPTY_PATTERN, PatternTuple
from repro.core.ruleset import RuleSet
from repro.master.manager import MasterDataManager


class FreshValue:
    """A sentinel for "any value outside the partition of ``attr``".

    Compares equal only to fresh values for the same attribute; never to a
    string or number, so master lookups miss and ``Eq`` conditions fail on
    it, exactly as for a real out-of-partition value.
    """

    __slots__ = ("attr",)

    def __init__(self, attr: str):
        self.attr = attr

    def __eq__(self, other: object) -> bool:
        return isinstance(other, FreshValue) and other.attr == self.attr

    def __hash__(self) -> int:
        return hash(("FreshValue", self.attr))

    def __repr__(self) -> str:
        return f"<fresh:{self.attr}>"


def fresh(attr: str) -> FreshValue:
    """The fresh sentinel for ``attr``."""
    return FreshValue(attr)


class CertaintyMode(enum.Enum):
    """How the certainty test quantifies over input tuples."""

    STRICT = "strict"
    ANCHORED = "anchored"
    SCENARIO = "scenario"


#: A scenario is any callable producing the universe of correct tuples
#: (full input-schema dicts). Used by ``CertaintyMode.SCENARIO``.
Scenario = Callable[[], Iterable[Mapping[str, Any]]]


def value_partition(
    ruleset: RuleSet,
    master: MasterDataManager,
    extra_patterns: Iterable[PatternTuple] = (),
) -> dict[str, tuple]:
    """The finite value partition per input attribute (without fresh).

    For each input attribute: every distinct master value of every master
    column it corresponds to through some rule, plus every pattern
    constant mentioned for it (rule patterns and ``extra_patterns``, e.g.
    a region tableau under test).
    """
    buckets: dict[str, set] = {name: set() for name in ruleset.input_schema.names}
    for rule in ruleset:
        for pair in rule.match:
            buckets[pair.t_attr].update(master.relation.active_domain(pair.m_attr))
        for attr in rule.pattern.attrs:
            buckets[attr].update(rule.pattern.constants_on(attr))
    for pattern in extra_patterns:
        for attr in pattern.attrs:
            if attr in buckets:
                buckets[attr].update(pattern.constants_on(attr))
    return {attr: tuple(sorted(vals, key=repr)) for attr, vals in buckets.items()}


def _correspondences(ruleset: RuleSet) -> dict[str, list[str]]:
    """input attribute -> master columns it is matched against."""
    out: dict[str, list[str]] = {}
    for rule in ruleset:
        for pair in rule.match:
            cols = out.setdefault(pair.t_attr, [])
            if pair.m_attr not in cols:
                cols.append(pair.m_attr)
    return out


def candidate_combos(
    attrs: Sequence[str],
    pattern: PatternTuple,
    ruleset: RuleSet,
    master: MasterDataManager,
    *,
    mode: CertaintyMode = CertaintyMode.STRICT,
    scenario: Scenario | None = None,
    partition: Mapping[str, tuple] | None = None,
    max_combos: int = 200_000,
) -> Iterator[dict[str, Any]]:
    """Enumerate the assignments of ``t[attrs]`` the mode quantifies over.

    Assignments are filtered by ``pattern`` (the region/tableau pattern
    under test) and deduplicated. Fresh sentinels are yielded *first* per
    attribute so that counterexample-producing combinations surface early.
    Raises :class:`~repro.errors.BudgetExceededError` past ``max_combos``.
    """
    attrs = tuple(attrs)
    if mode is CertaintyMode.SCENARIO:
        if scenario is None:
            raise ValueError("CertaintyMode.SCENARIO requires a scenario generator")
        seen: set[tuple] = set()
        count = 0
        for full in scenario():
            combo = {a: full[a] for a in attrs}
            if not pattern.matches(combo):
                continue
            key = tuple(combo[a] for a in attrs)
            if key in seen:
                continue
            seen.add(key)
            count += 1
            if count > max_combos:
                raise BudgetExceededError(
                    f"scenario universe for {attrs} exceeds max_combos={max_combos}"
                )
            yield combo
        return

    part = dict(partition) if partition is not None else value_partition(
        ruleset, master, extra_patterns=[pattern]
    )

    if mode is CertaintyMode.STRICT:
        per_attr: list[list[Any]] = []
        for a in attrs:
            universe = [fresh(a)] + list(part.get(a, ())) + [
                c for c in pattern.constants_on(a) if c not in part.get(a, ())
            ]
            allowed = pattern.condition(a).allowed(universe)
            per_attr.append(allowed)
        total = 1
        for cands in per_attr:
            total *= max(len(cands), 1)
        if total > max_combos:
            raise BudgetExceededError(
                f"STRICT enumeration over {attrs} needs {total} combos "
                f"(> max_combos={max_combos}); use ANCHORED/SCENARIO mode or raise the budget"
            )
        if any(not cands for cands in per_attr):
            return
        for values in itertools.product(*per_attr):
            yield dict(zip(attrs, values))
        return

    if mode is CertaintyMode.ANCHORED:
        corr = _correspondences(ruleset)
        pattern_consts: dict[str, set] = {}
        for rule in ruleset:
            for a in rule.pattern.attrs:
                pattern_consts.setdefault(a, set()).update(rule.pattern.constants_on(a))
        for a in pattern.attrs:
            pattern_consts.setdefault(a, set()).update(pattern.constants_on(a))
        seen = set()
        count = 0
        for s in master.relation.rows():
            per_attr = []
            for a in attrs:
                cands: list[Any] = []
                for m in corr.get(a, ()):
                    if m in master.schema and s[m] not in cands:
                        cands.append(s[m])
                for c in sorted(pattern_consts.get(a, ()), key=repr):
                    if c not in cands:
                        cands.append(c)
                if a not in corr:
                    cands.append(fresh(a))
                allowed = pattern.condition(a).allowed(cands)
                per_attr.append(allowed)
            if any(not cands for cands in per_attr):
                continue
            for values in itertools.product(*per_attr):
                key = tuple(values)
                if key in seen:
                    continue
                seen.add(key)
                count += 1
                if count > max_combos:
                    raise BudgetExceededError(
                        f"ANCHORED enumeration over {attrs} exceeds max_combos={max_combos}"
                    )
                yield dict(zip(attrs, values))
        return

    raise ValueError(f"unknown certainty mode {mode!r}")  # pragma: no cover


@dataclass
class CertaintyReport:
    """The outcome of a certainty analysis.

    ``guaranteed`` is the set of attributes validated in *every* examined
    chase run — when it covers the whole schema (and no run conflicted),
    the region is certain. ``vacuous`` flags an empty quantification
    universe (no tuple matches the tableau at all), which is reported as
    certain-but-vacuous rather than silently passed off as useful.
    """

    certain: bool
    guaranteed: frozenset[str]
    combos_checked: int
    exhaustive: bool = True
    vacuous: bool = False
    counterexample: dict[str, Any] | None = None
    failure: str | None = None  # "incomplete" | "conflict"

    def describe(self) -> str:
        if self.certain and self.vacuous:
            return "vacuously certain (no tuple matches the tableau)"
        if self.certain:
            return f"certain ({self.combos_checked} combinations verified)"
        missing = ""
        if self.failure == "incomplete":
            missing = f", unvalidated attrs survive: {sorted(self.guaranteed and [])}"
        return (
            f"not certain: {self.failure} at {self.counterexample!r}"
            f" after {self.combos_checked} combinations{missing}"
        )


def guaranteed_validated(
    attrs: Sequence[str],
    tableau: Sequence[PatternTuple],
    ruleset: RuleSet,
    master: MasterDataManager,
    *,
    mode: CertaintyMode = CertaintyMode.STRICT,
    scenario: Scenario | None = None,
    max_combos: int = 200_000,
    stop_on_counterexample: bool = True,
) -> CertaintyReport:
    """Chase every quantified assignment of ``t[attrs]``; intersect results.

    The single engine behind :func:`is_certain_region` (full certainty),
    the region finder (safe-combination harvesting happens in
    :mod:`repro.core.region_finder`) and semantic suggestions.
    """
    attrs = tuple(attrs)
    schema = ruleset.input_schema
    all_attrs = frozenset(schema.names)
    partition = value_partition(ruleset, master, extra_patterns=tableau)
    guaranteed: frozenset[str] | None = None
    checked = 0
    counterexample = None
    failure = None
    for pattern in tableau:
        for combo in candidate_combos(
            attrs,
            pattern,
            ruleset,
            master,
            mode=mode,
            scenario=scenario,
            partition=partition,
            max_combos=max_combos,
        ):
            values = {a: combo.get(a, fresh(a)) for a in schema.names}
            result = chase(values, attrs, ruleset, master)
            checked += 1
            if result.conflicts:
                counterexample = counterexample or dict(combo)
                failure = failure or "conflict"
                guaranteed = frozenset(attrs) if guaranteed is None else guaranteed
                if stop_on_counterexample:
                    return CertaintyReport(
                        certain=False,
                        guaranteed=guaranteed,
                        combos_checked=checked,
                        counterexample=dict(combo),
                        failure="conflict",
                    )
                continue
            guaranteed = (
                result.validated if guaranteed is None else guaranteed & result.validated
            )
            if not result.is_complete and counterexample is None:
                counterexample = dict(combo)
                failure = "incomplete"
                if stop_on_counterexample:
                    return CertaintyReport(
                        certain=False,
                        guaranteed=guaranteed,
                        combos_checked=checked,
                        counterexample=dict(combo),
                        failure="incomplete",
                    )
    if checked == 0:
        return CertaintyReport(
            certain=True,
            guaranteed=all_attrs,
            combos_checked=0,
            vacuous=True,
        )
    assert guaranteed is not None
    certain = guaranteed >= all_attrs and failure is None
    return CertaintyReport(
        certain=certain,
        guaranteed=guaranteed,
        combos_checked=checked,
        counterexample=counterexample,
        failure=failure,
    )


def is_certain_region(
    attrs: Sequence[str],
    tableau: Sequence[PatternTuple] | None,
    ruleset: RuleSet,
    master: MasterDataManager,
    *,
    mode: CertaintyMode = CertaintyMode.STRICT,
    scenario: Scenario | None = None,
    max_combos: int = 200_000,
) -> CertaintyReport:
    """Decide whether ``(attrs, tableau)`` is a certain region.

    ``tableau=None`` means the single wildcard pattern (the paper's
    unconditional region).
    """
    tab = tuple(tableau) if tableau else (EMPTY_PATTERN,)
    return guaranteed_validated(
        attrs,
        tab,
        ruleset,
        master,
        mode=mode,
        scenario=scenario,
        max_combos=max_combos,
    )
