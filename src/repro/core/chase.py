"""The chase: applying editing rules to an input tuple until fixpoint.

Given an input tuple ``t`` and a set ``V`` of *validated* attributes
(assured correct, by the user or by earlier applications), a rule
``φ: ((X, Xm) → (B, Bm), tp)`` is **safely applicable** when:

1. ``X ∪ Xp ⊆ V`` — the rule reads only validated values;
2. ``t[Xp]`` matches ``tp``;
3. at least one master tuple matches ``t[X]`` under the rule's operators;
4. every matching master tuple agrees on the correction value
   (the **uniqueness gate** — without it the fix would not be certain).

Applying it sets ``t[B]`` to the agreed value and adds ``B`` to ``V``.
Because ``V`` only grows and each self-normalising rewrite fires at most
once, the chase terminates; :func:`chase` runs rules in the rule set's
canonical order and records every step with full provenance, every
ambiguity it skipped over, and every conflict it detected (a prescribed
change to an already-validated attribute — evidence the rules and master
data are inconsistent, or a validation was wrong).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Iterable, Mapping, Sequence

from repro.errors import ConflictError
from repro.core.rule import EditingRule
from repro.core.ruleset import RuleSet
from repro.master.manager import MasterDataManager


class AppStatus(enum.Enum):
    """Why a rule did or did not fire on the current state."""

    READY = "ready"  # safely applicable: a unique correction value exists
    NOT_READY = "not_ready"  # some attribute the rule reads is not validated
    PATTERN_MISS = "pattern_miss"  # the (validated) pattern attributes do not match tp
    NO_MATCH = "no_match"  # no master tuple matches t[X]
    AMBIGUOUS = "ambiguous"  # matching master tuples disagree on the value


@dataclass(frozen=True)
class Applicability:
    """The detailed outcome of testing one rule against one state."""

    status: AppStatus
    value: Any = None
    master_positions: tuple[int, ...] = ()
    candidate_values: tuple[Any, ...] = ()
    missing: tuple[str, ...] = ()

    @property
    def is_ready(self) -> bool:
        return self.status is AppStatus.READY


#: Shared outcome instances for the two payload-free misses — the chase
#: tests every rule on every sweep, and allocating a fresh frozen
#: dataclass per miss showed up in the stream profile.
_PATTERN_MISS = Applicability(AppStatus.PATTERN_MISS)
_NO_MATCH = Applicability(AppStatus.NO_MATCH)


def applicable(
    rule: EditingRule,
    values: Mapping[str, Any],
    validated: frozenset[str] | set[str],
    master: MasterDataManager,
    *,
    use_index: bool = True,
) -> Applicability:
    """Test whether ``rule`` is safely applicable to ``(values, validated)``.

    This is the single decision procedure shared by the chase, the
    certainty analysis and the consistency checker, so their notions of
    "applicable" cannot drift apart.
    """
    if not rule.reads <= validated:
        missing = tuple(a for a in rule.sorted_reads if a not in validated)
        return Applicability(AppStatus.NOT_READY, missing=missing)
    if rule.has_pattern and not rule.pattern.matches(values):
        return _PATTERN_MISS
    if rule.is_constant:
        # The manager would answer MasterMatch((), (constant,)) without
        # touching any store; skip the round trip.
        return Applicability(AppStatus.READY, value=rule.source.value)
    match = master.match(rule, values, use_index=use_index)
    if not match.positions:
        return _NO_MATCH
    if not match.is_unique:
        return Applicability(
            AppStatus.AMBIGUOUS,
            master_positions=match.positions,
            candidate_values=match.values,
        )
    return Applicability(
        AppStatus.READY, value=match.value, master_positions=match.positions
    )


@dataclass(frozen=True)
class FixStep:
    """One applied fix, with provenance for the audit trail."""

    attr: str
    old: Any
    new: Any
    rule_id: str
    master_positions: tuple[int, ...]
    normalized: bool = False  # True for a self-normalising rewrite of a validated attr

    def describe(self) -> str:
        kind = "normalized" if self.normalized else "fixed"
        via = f"rule {self.rule_id}"
        if self.master_positions:
            via += f", master tuple(s) {list(self.master_positions)}"
        return f"{self.attr}: {self.old!r} -> {self.new!r} ({kind} by {via})"


@dataclass(frozen=True)
class ConflictWitness:
    """Evidence that two certain fixes disagree.

    ``existing`` is the current (validated) value of ``attr``;
    ``prescribed`` is what ``rule_id`` wants it to be. For a consistent
    rule set and correct validations this never happens ([7], §4).
    """

    attr: str
    existing: Any
    prescribed: Any
    rule_id: str
    master_positions: tuple[int, ...]

    def describe(self) -> str:
        return (
            f"conflict on {self.attr}: validated value {self.existing!r} but rule "
            f"{self.rule_id} (master {list(self.master_positions)}) prescribes {self.prescribed!r}"
        )


@dataclass(frozen=True)
class AmbiguityEvent:
    """A rule blocked by the uniqueness gate during a chase."""

    attr: str
    rule_id: str
    candidate_values: tuple[Any, ...]


@dataclass
class ChaseResult:
    """The outcome of one chase run."""

    values: dict[str, Any]
    validated: frozenset[str]
    steps: tuple[FixStep, ...]
    conflicts: tuple[ConflictWitness, ...]
    ambiguities: tuple[AmbiguityEvent, ...]
    all_attrs: frozenset[str]
    sweeps: int = 0

    @property
    def is_complete(self) -> bool:
        """True iff every attribute ended up validated — a certain fix."""
        return self.validated >= self.all_attrs and not self.conflicts

    @property
    def unvalidated(self) -> frozenset[str]:
        return self.all_attrs - self.validated

    @property
    def fixed_attrs(self) -> tuple[str, ...]:
        return tuple(s.attr for s in self.steps)


def chase(
    values: Mapping[str, Any],
    validated: Iterable[str],
    ruleset: RuleSet,
    master: MasterDataManager,
    *,
    strict: bool = False,
    use_index: bool = True,
    rule_order: Sequence[str] | None = None,
    max_sweeps: int | None = None,
) -> ChaseResult:
    """Run the chase from ``(values, validated)`` to fixpoint.

    ``values`` must cover every input-schema attribute (dirty values are
    fine — that is the point). ``strict=True`` raises
    :class:`~repro.errors.ConflictError` on the first conflict instead of
    recording it. ``rule_order`` overrides the canonical order (used by
    the Church–Rosser property tests). The input mapping is not mutated.
    """
    schema = ruleset.input_schema
    state = {name: values[name] for name in schema.names}
    valid: set[str] = set(validated)
    unknown = valid - set(schema.names)
    if unknown:
        from repro.errors import SchemaError

        raise SchemaError(f"validated attributes {sorted(unknown)} not in schema {schema.name!r}")

    rules: list[EditingRule] = (
        [ruleset.get(r) for r in rule_order] if rule_order is not None else list(ruleset)
    )
    steps: list[FixStep] = []
    conflicts: list[ConflictWitness] = []
    ambiguities: list[AmbiguityEvent] = []
    normalized_once: set[str] = set()  # rule ids that already rewrote their target

    # Within one chase the master data never changes, so a rule's
    # applicability depends only on the state values it reads — plus its
    # target's current value, which the conflict check compares against.
    # The fixpoint loop re-tests every rule on every sweep; skip the
    # master probe when none of those values moved since the last test.
    app_cache: dict[str, tuple[list, Applicability]] = {}

    def _test(rule: EditingRule) -> Applicability:
        key = [state[a] for a in rule.sorted_reads]
        key.append(state[rule.target])
        cached = app_cache.get(rule.rule_id)
        if cached is not None and cached[0] == key:
            return cached[1]
        app = applicable(rule, state, valid, master, use_index=use_index)
        app_cache[rule.rule_id] = (key, app)
        return app

    # Each productive sweep validates an attribute or performs one of the
    # at-most-len(rules) normalising rewrites, so this bound is never hit;
    # it guards against a future bug turning the loop infinite.
    bound = max_sweeps if max_sweeps is not None else len(schema) + len(rules) + 2
    sweeps = 0
    changed = True
    while changed and sweeps < bound:
        changed = False
        sweeps += 1
        for rule in rules:
            if not rule.reads <= valid:
                # Not ready: every branch below would discard the
                # NOT_READY outcome, so skip the applicability test.
                continue
            target_valid = rule.target in valid
            if target_valid and (rule.is_self_normalizing is False or rule.rule_id in normalized_once):
                # Either nothing left for this rule to do, or — for a rule
                # that is not self-normalising — a potential conflict to check.
                if rule.is_self_normalizing and rule.rule_id in normalized_once:
                    continue
                app = _test(rule)
                if app.is_ready and app.value != state[rule.target]:
                    witness = ConflictWitness(
                        attr=rule.target,
                        existing=state[rule.target],
                        prescribed=app.value,
                        rule_id=rule.rule_id,
                        master_positions=app.master_positions,
                    )
                    if witness not in conflicts:
                        conflicts.append(witness)
                        if strict:
                            raise ConflictError(witness.describe(), witness=witness)
                continue
            app = _test(rule)
            if app.status is AppStatus.AMBIGUOUS:
                event = AmbiguityEvent(rule.target, rule.rule_id, app.candidate_values)
                if event not in ambiguities:
                    ambiguities.append(event)
                continue
            if not app.is_ready:
                continue
            if target_valid:
                # Self-normalising rule over a validated target: rewrite to
                # the canonical master form, at most once per rule.
                normalized_once.add(rule.rule_id)
                if app.value != state[rule.target]:
                    steps.append(
                        FixStep(
                            attr=rule.target,
                            old=state[rule.target],
                            new=app.value,
                            rule_id=rule.rule_id,
                            master_positions=app.master_positions,
                            normalized=True,
                        )
                    )
                    state[rule.target] = app.value
                    changed = True
                continue
            steps.append(
                FixStep(
                    attr=rule.target,
                    old=state[rule.target],
                    new=app.value,
                    rule_id=rule.rule_id,
                    master_positions=app.master_positions,
                )
            )
            state[rule.target] = app.value
            valid.add(rule.target)
            changed = True

    return ChaseResult(
        values=state,
        validated=frozenset(valid),
        steps=tuple(steps),
        conflicts=tuple(conflicts),
        ambiguities=tuple(ambiguities),
        all_attrs=frozenset(schema.names),
        sweeps=sweeps,
    )


# -- cross-tuple chase memoisation -------------------------------------------
#
# Every decision the chase makes reads *validated* values only: the
# readiness gate is ``reads <= validated``, the pattern constrains
# attributes in ``reads``, and master probes key on the (validated) LHS.
# Unvalidated values influence exactly one thing — the ``old`` field of
# the steps that overwrite them (each step fires regardless of the value
# it replaces). So two states with identical validated (attr, value)
# pairs produce the *same transcript up to rebinding those olds*, and a
# batch run over duplicate-heavy data can chase each distinct validated
# state once. (The point-of-entry stream deliberately does not use this:
# it is the per-tuple baseline the batch pipeline is measured against.)


def _chase_relevant(ruleset: RuleSet) -> frozenset[str]:
    """The attributes whose values can steer a chase: everything some
    rule reads (readiness, pattern, probe key) or targets (the conflict
    check compares the prescribed value against the current cell).
    Validated values *outside* this set ride along untouched."""
    cache = getattr(ruleset, "_analysis_cache", None)
    if cache is not None:
        hit = cache.get("chase_relevant")
        if hit is not None:
            return hit
    attrs: set[str] = set()
    for rule in ruleset:
        attrs |= rule.reads
        attrs.add(rule.target)
    relevant = frozenset(attrs)
    if cache is not None:
        cache["chase_relevant"] = relevant
    return relevant


def _chase_memo_key(
    values: Mapping[str, Any], validated: Iterable[str], ruleset: RuleSet
) -> tuple | None:
    """The sorted validated attribute names plus the (attr, type, value)
    triples of the *rule-relevant* ones — or None when any such value is
    unhashable/missing (caller falls back to a direct chase).

    The name list must cover every validated attribute (it determines
    ``result.validated``), but values only matter where a rule can read
    or overwrite them — keying on free payload attributes (a per-row
    item code, say) would shatter an otherwise duplicate-heavy key
    space. Types are included because values hashing equal
    (``1``/``1.0``/``True``) can still behave differently under pattern
    matching and probe normalisation."""
    relevant = _chase_relevant(ruleset)
    attrs = tuple(sorted(validated))
    try:
        key = (
            attrs,
            tuple(
                (a, values[a].__class__, values[a]) for a in attrs if a in relevant
            ),
        )
        hash(key)
    except (TypeError, KeyError):
        return None
    return key


def _rebind_chase(template: ChaseResult, values: Mapping[str, Any]) -> ChaseResult:
    """Replay a memoised transcript onto ``values``.

    Steps keep their (attr, new, rule, provenance) — only ``old`` is
    re-read from the replay state. Conflicts and ambiguities carry
    validated values exclusively, so they transfer verbatim.
    """
    state = {name: values[name] for name in template.values}
    steps = []
    for s in template.steps:
        old = state[s.attr]
        steps.append(
            FixStep(
                attr=s.attr,
                old=old,
                new=s.new,
                rule_id=s.rule_id,
                master_positions=s.master_positions,
                normalized=s.normalized,
            )
            if old != s.old
            else s
        )
        state[s.attr] = s.new
    return ChaseResult(
        values=state,
        validated=template.validated,
        steps=tuple(steps),
        conflicts=template.conflicts,
        ambiguities=template.ambiguities,
        all_attrs=template.all_attrs,
        sweeps=template.sweeps,
    )


def chase_memoized(
    values: Mapping[str, Any],
    validated: Iterable[str],
    ruleset: RuleSet,
    master: MasterDataManager,
    memo: Any,
    *,
    use_index: bool = True,
) -> ChaseResult:
    """:func:`chase`, sharing transcripts across identical validated
    states via ``memo`` (a ``get``/``put`` mapping, e.g.
    :class:`repro.service.cache.LRUMemo`).

    The caller owns key-space hygiene for everything *not* in the key:
    one memo must only ever see one (ruleset, master content, use_index)
    configuration — the batch executor scopes its memo to a single run.
    Not valid under ``strict=True`` (a strict chase aborts mid-sweep on
    the first conflict; a memoised transcript has already run to
    fixpoint).
    """
    key = _chase_memo_key(values, validated, ruleset)
    if key is None:
        return chase(values, validated, ruleset, master, use_index=use_index)
    template = memo.get(key)
    if template is None:
        template = chase(values, validated, ruleset, master, use_index=use_index)
        memo.put(key, template)
    return _rebind_chase(template, values)
