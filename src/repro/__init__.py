"""CerFix: cleaning data with certain fixes.

A full reproduction of *CerFix: A System for Cleaning Data with Certain
Fixes* (Fan, Li, Ma, Tang, Yu — PVLDB 4(12), 2011) and the editing-rule
machinery of its companion paper (PVLDB 2010). See README.md for a tour
and DESIGN.md for the architecture and experiment index.

Quickstart::

    from repro import CerFix, OracleUser
    from repro.scenarios import uk_customers as uk

    engine = CerFix(uk.paper_ruleset(), uk.paper_master())
    session = engine.fix(uk.fig3_tuple(), OracleUser(uk.fig3_truth()), "t1")
    assert session.is_complete
    print(session.fixed_values())
"""

from repro.engine import CerFix, MasterUpdateReport
from repro.errors import (
    BudgetExceededError,
    CerFixError,
    ConflictError,
    MasterDataError,
    MonitorError,
    ParseError,
    PatternError,
    RelationError,
    RuleError,
    SchemaError,
    ValidationError,
)
from repro.core import (
    CertaintyMode,
    ChaseResult,
    Constant,
    EditingRule,
    Eq,
    MasterColumn,
    MatchPair,
    NotIn,
    PatternTuple,
    RankedRegion,
    Region,
    RuleSet,
    WILDCARD,
    chase,
    check_consistency,
    find_certain_regions,
    is_certain_region,
    mandatory_attributes,
)
from repro.core.pattern import Neq
from repro.master import (
    STORE_BACKENDS,
    MasterDataManager,
    MasterStore,
    RemoteMasterStore,
    ShardedMasterStore,
    SingleRelationStore,
    SqliteMasterStore,
    make_store,
)
from repro.batch import (
    BatchCleaner,
    BatchReport,
    BatchResult,
    CacheStats,
    CheckpointJournal,
    ProbeCache,
)
from repro.service import (
    AsyncCerFixServer,
    AsyncCerFixService,
    LoadReport,
    ServiceMetrics,
    SharedProbeCache,
    run_load,
)
from repro.audit import AuditLog, attribute_stats, overall_stats
from repro.monitor import (
    CautiousUser,
    MonitorSession,
    OracleUser,
    ScriptedUser,
    SelectiveUser,
    StreamProcessor,
    Suggestion,
    SuggestionStrategy,
)
from repro.relational import Relation, Row, Schema, Attribute
from repro.rules import (
    CFD,
    MatchingDependency,
    editing_rules_from_cfd,
    editing_rules_from_md,
    parse_rule,
    parse_rules,
)
from repro.discovery import discover_constant_cfds, discover_fds, discover_mds
from repro.config import InstanceConfig, load_instance, save_instance

__version__ = "1.5.0"

__all__ = [
    "CerFix",
    "MasterUpdateReport",
    "CerFixError",
    "SchemaError",
    "RelationError",
    "RuleError",
    "PatternError",
    "ParseError",
    "ConflictError",
    "BudgetExceededError",
    "MasterDataError",
    "MonitorError",
    "ValidationError",
    "CertaintyMode",
    "ChaseResult",
    "Constant",
    "EditingRule",
    "Eq",
    "Neq",
    "NotIn",
    "WILDCARD",
    "MasterColumn",
    "MatchPair",
    "PatternTuple",
    "RankedRegion",
    "Region",
    "RuleSet",
    "chase",
    "check_consistency",
    "find_certain_regions",
    "is_certain_region",
    "mandatory_attributes",
    "MasterDataManager",
    "MasterStore",
    "SingleRelationStore",
    "ShardedMasterStore",
    "SqliteMasterStore",
    "RemoteMasterStore",
    "STORE_BACKENDS",
    "make_store",
    "AsyncCerFixServer",
    "AsyncCerFixService",
    "LoadReport",
    "ServiceMetrics",
    "SharedProbeCache",
    "run_load",
    "BatchCleaner",
    "BatchReport",
    "BatchResult",
    "CacheStats",
    "CheckpointJournal",
    "ProbeCache",
    "AuditLog",
    "attribute_stats",
    "overall_stats",
    "MonitorSession",
    "OracleUser",
    "CautiousUser",
    "SelectiveUser",
    "ScriptedUser",
    "StreamProcessor",
    "Suggestion",
    "SuggestionStrategy",
    "Relation",
    "Row",
    "Schema",
    "Attribute",
    "CFD",
    "MatchingDependency",
    "editing_rules_from_cfd",
    "editing_rules_from_md",
    "parse_rule",
    "parse_rules",
    "discover_constant_cfds",
    "discover_fds",
    "discover_mds",
    "InstanceConfig",
    "load_instance",
    "save_instance",
    "__version__",
]
