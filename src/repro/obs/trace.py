"""Structured tracing: context-propagated spans, JSONL export.

Design constraints, in order:

1. **Off-cost when disabled.** ``span()`` is called on the chase hot
   path; with tracing off it is one module-flag check returning a
   cached no-op singleton. The bench guard
   (``benchmarks/bench_obs_overhead.py`` + ``check_bench_json.py
   --obs-overhead``) holds disabled-tracing throughput within 2% of an
   instrumented-out build.
2. **Ids must cross every execution boundary the system has.**
   Contextvars carry the current span within a task/thread; explicit
   :class:`TraceCarrier` snapshots cross thread pools and process
   pools (it is picklable); the ``X-Cerfix-Trace`` HTTP header crosses
   the remote-store RPC into shard servers. One ``cerfix clean --store
   remote --trace out.jsonl`` run therefore yields a single connected
   trace over client, executor workers and every shard-server process.
3. **Multi-process safe export.** Spans append single ``os.write``
   lines to an ``O_APPEND`` fd, so workers and shard servers share one
   JSONL file without interleaving torn lines.

Sampling is decided once at the root span (children inherit the bit);
unsampled spans still propagate ids — they are just never exported.
Span ids come from ``os.urandom`` so forked workers cannot collide.

Enable per process with :func:`configure`, per CLI with ``--trace``,
or per environment with ``CERFIX_TRACE=path[|sample]`` (honoured by
``cerfix shard-server`` / spawned shard clusters via
:func:`configure_from_env` — deliberately *not* read at import time).
"""

from __future__ import annotations

import json
import os
import time
from contextvars import ContextVar
from typing import Any, NamedTuple

HEADER = "X-Cerfix-Trace"

_ENABLED = False
_PATH: str | None = None
_SAMPLE = 1.0
_FD: int | None = None
_FD_PID: int | None = None

_CURRENT: ContextVar[Any] = ContextVar("cerfix_current_span", default=None)


class _NoopSpan:
    """The shared do-nothing span returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc: Any) -> bool:
        return False

    def annotate(self, **attrs: Any) -> None:
        pass


NOOP = _NoopSpan()


class TraceCarrier(NamedTuple):
    """A picklable snapshot of the current trace context.

    Capture with :func:`carrier` before handing work to a thread or
    process pool; re-establish inside the worker with
    :func:`activate`. ``path``/``sample`` let process-pool workers
    configure their own exporter to the same JSONL file.
    """

    trace_id: str
    span_id: str
    sampled: bool
    path: str | None = None
    sample: float = 1.0


class _RemoteParent:
    """An activated carrier: parent ids without a measured local span."""

    __slots__ = ("trace_id", "span_id", "sampled")

    def __init__(self, trace_id: str, span_id: str, sampled: bool):
        self.trace_id = trace_id
        self.span_id = span_id
        self.sampled = sampled


class Span:
    """A real measured span; use as a context manager."""

    __slots__ = (
        "name",
        "trace_id",
        "span_id",
        "parent_id",
        "sampled",
        "attrs",
        "_start",
        "_wall",
        "_token",
    )

    def __init__(
        self,
        name: str,
        trace_id: str,
        parent_id: str | None,
        sampled: bool,
        attrs: dict[str, Any],
    ):
        self.name = name
        self.trace_id = trace_id
        self.span_id = os.urandom(8).hex()
        self.parent_id = parent_id
        self.sampled = sampled
        self.attrs = attrs

    def __enter__(self) -> "Span":
        self._start = time.perf_counter()
        self._wall = time.time()
        self._token = _CURRENT.set(self)
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        _CURRENT.reset(self._token)
        if self.sampled and _ENABLED:
            if exc_type is not None:
                self.attrs["error"] = exc_type.__name__
            _export(self, time.perf_counter() - self._start)
        return False

    def annotate(self, **attrs: Any) -> None:
        self.attrs.update(attrs)


def span(name: str, **attrs: Any):
    """Open a span under the current context (or start a new trace).

    Returns :data:`NOOP` when tracing is disabled — the call costs one
    flag check, no allocation.
    """
    if not _ENABLED:
        return NOOP
    parent = _CURRENT.get()
    if parent is None:
        trace_id = os.urandom(8).hex()
        parent_id = None
        sampled = _SAMPLE >= 1.0 or int.from_bytes(os.urandom(2), "big") < _SAMPLE * 65536
    else:
        trace_id = parent.trace_id
        parent_id = parent.span_id
        sampled = parent.sampled
    return Span(name, trace_id, parent_id, sampled, attrs)


def current_ids() -> tuple[str | None, str | None]:
    """(trace_id, span_id) of the active span — the audit-event stamp."""
    if not _ENABLED:
        return (None, None)
    cur = _CURRENT.get()
    if cur is None:
        return (None, None)
    return (cur.trace_id, cur.span_id)


def carrier() -> TraceCarrier | None:
    """Snapshot the current context for another thread/process."""
    if not _ENABLED:
        return None
    cur = _CURRENT.get()
    if cur is None:
        return None
    return TraceCarrier(cur.trace_id, cur.span_id, cur.sampled, _PATH, _SAMPLE)


class activate:
    """Context manager installing a carrier as the ambient parent.

    ``activate(None)`` is a no-op, so call sites do not need their own
    disabled checks.
    """

    __slots__ = ("_carrier", "_token")

    def __init__(self, car: TraceCarrier | None):
        self._carrier = car
        self._token = None

    def __enter__(self) -> "activate":
        if self._carrier is not None and _ENABLED:
            c = self._carrier
            self._token = _CURRENT.set(_RemoteParent(c.trace_id, c.span_id, c.sampled))
        return self

    def __exit__(self, *exc: Any) -> bool:
        if self._token is not None:
            _CURRENT.reset(self._token)
            self._token = None
        return False


# -- HTTP propagation --------------------------------------------------------


def header_value() -> str | None:
    """The ``X-Cerfix-Trace`` value for an outgoing RPC, if any."""
    if not _ENABLED:
        return None
    cur = _CURRENT.get()
    if cur is None:
        return None
    return f"{cur.trace_id}-{cur.span_id}-{int(cur.sampled)}"


def parse_header(value: str | None) -> TraceCarrier | None:
    """Parse an incoming header into a carrier (None if absent/bad)."""
    if not value:
        return None
    parts = value.strip().split("-")
    if len(parts) != 3:
        return None
    trace_id, span_id, flag = parts
    if not trace_id or not span_id or flag not in ("0", "1"):
        return None
    return TraceCarrier(trace_id, span_id, flag == "1")


# -- configuration -----------------------------------------------------------


def configure(path: str | os.PathLike, sample: float = 1.0) -> None:
    """Enable tracing in this process, exporting spans to ``path``."""
    global _ENABLED, _PATH, _SAMPLE
    _close_fd()
    _PATH = os.fspath(path)
    _SAMPLE = max(0.0, min(1.0, float(sample)))
    _ENABLED = True


def disable() -> None:
    """Turn tracing off (spans already open export if sampled-in)."""
    global _ENABLED, _PATH, _SAMPLE
    _ENABLED = False
    _PATH = None
    _SAMPLE = 1.0
    _close_fd()


def enabled() -> bool:
    return _ENABLED


def export_path() -> str | None:
    return _PATH


def configure_from_env() -> bool:
    """Honour ``CERFIX_TRACE=path[|sample]`` if set; returns whether
    tracing ended up enabled. Shard servers call this at startup so a
    spawned cluster inherits the client's tracing config through the
    environment."""
    value = os.environ.get("CERFIX_TRACE", "").strip()
    if not value:
        return _ENABLED
    path, _, rate = value.partition("|")
    try:
        sample = float(rate) if rate else 1.0
    except ValueError:
        sample = 1.0
    configure(path, sample)
    return True


def env_value(path: str, sample: float) -> str:
    """The ``CERFIX_TRACE`` encoding of a (path, sample) config."""
    return path if sample >= 1.0 else f"{path}|{sample:g}"


# -- JSONL export ------------------------------------------------------------


def _close_fd() -> None:
    global _FD, _FD_PID
    if _FD is not None:
        try:
            os.close(_FD)
        except OSError:
            pass
    _FD = None
    _FD_PID = None


def _export(s: Span, dur_s: float) -> None:
    global _FD, _FD_PID
    if _PATH is None:
        return
    pid = os.getpid()
    if _FD is None or _FD_PID != pid:  # reopen after fork — never share offsets
        try:
            _FD = os.open(_PATH, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        except OSError:
            return
        _FD_PID = pid
    record: dict[str, Any] = {
        "trace": s.trace_id,
        "span": s.span_id,
        "parent": s.parent_id,
        "name": s.name,
        "ts": round(s._wall, 6),
        "dur_ms": round(dur_s * 1000.0, 3),
        "pid": pid,
    }
    if s.attrs:
        record["attrs"] = s.attrs
    try:
        os.write(_FD, (json.dumps(record, default=str) + "\n").encode("utf-8"))
    except OSError:
        pass
