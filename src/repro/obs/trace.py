"""Structured tracing: context-propagated spans, JSONL export.

Design constraints, in order:

1. **Off-cost when disabled.** ``span()`` is called on the chase hot
   path; with tracing off it is one module-flag check returning a
   cached no-op singleton. The bench guard
   (``benchmarks/bench_obs_overhead.py`` + ``check_bench_json.py
   --obs-overhead``) holds disabled-tracing throughput within 2% of an
   instrumented-out build.
2. **Ids must cross every execution boundary the system has.**
   Contextvars carry the current span within a task/thread; explicit
   :class:`TraceCarrier` snapshots cross thread pools and process
   pools (it is picklable); the ``X-Cerfix-Trace`` HTTP header crosses
   the remote-store RPC into shard servers. One ``cerfix clean --store
   remote --trace out.jsonl`` run therefore yields a single connected
   trace over client, executor workers and every shard-server process.
3. **Multi-process safe export.** Spans append single ``os.write``
   lines to an ``O_APPEND`` fd, so workers and shard servers share one
   JSONL file without interleaving torn lines.

Sampling is decided once at the root span (children inherit the bit);
unsampled spans still propagate ids — they are just never exported.
Span ids come from ``os.urandom`` so forked workers cannot collide.

Enable per process with :func:`configure`, per CLI with ``--trace``,
or per environment with ``CERFIX_TRACE=path[|sample]`` (honoured by
``cerfix shard-server`` / spawned shard clusters via
:func:`configure_from_env` — deliberately *not* read at import time).
"""

from __future__ import annotations

import json
import os
import time
from contextvars import ContextVar
from typing import Any, NamedTuple

HEADER = "X-Cerfix-Trace"

_ENABLED = False
_PATH: str | None = None
_SAMPLE = 1.0
_SINK: "_Sink | None" = None
_SLOW: "_Sink | None" = None
_SLOW_MS = 100.0

# Default export-file cap: a long-running traced service must not fill
# the disk. Override with CERFIX_TRACE_MAX_MB (0 disables rotation).
DEFAULT_MAX_MB = 256.0

_CURRENT: ContextVar[Any] = ContextVar("cerfix_current_span", default=None)


class _NoopSpan:
    """The shared do-nothing span returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc: Any) -> bool:
        return False

    def annotate(self, **attrs: Any) -> None:
        pass


NOOP = _NoopSpan()


class TraceCarrier(NamedTuple):
    """A picklable snapshot of the current trace context.

    Capture with :func:`carrier` before handing work to a thread or
    process pool; re-establish inside the worker with
    :func:`activate`. ``path``/``sample`` let process-pool workers
    configure their own exporter to the same JSONL file.
    """

    trace_id: str
    span_id: str
    sampled: bool
    path: str | None = None
    sample: float = 1.0


class _RemoteParent:
    """An activated carrier: parent ids without a measured local span."""

    __slots__ = ("trace_id", "span_id", "sampled")

    def __init__(self, trace_id: str, span_id: str, sampled: bool):
        self.trace_id = trace_id
        self.span_id = span_id
        self.sampled = sampled


class Span:
    """A real measured span; use as a context manager."""

    __slots__ = (
        "name",
        "trace_id",
        "span_id",
        "parent_id",
        "sampled",
        "attrs",
        "_start",
        "_wall",
        "_token",
    )

    def __init__(
        self,
        name: str,
        trace_id: str,
        parent_id: str | None,
        sampled: bool,
        attrs: dict[str, Any],
    ):
        self.name = name
        self.trace_id = trace_id
        self.span_id = os.urandom(8).hex()
        self.parent_id = parent_id
        self.sampled = sampled
        self.attrs = attrs

    def __enter__(self) -> "Span":
        self._start = time.perf_counter()
        self._wall = time.time()
        self._token = _CURRENT.set(self)
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        _CURRENT.reset(self._token)
        dur_s = time.perf_counter() - self._start
        if exc_type is not None and (_SINK is not None or _SLOW is not None):
            self.attrs["error"] = exc_type.__name__
        if self.sampled and _ENABLED and _SINK is not None:
            _SINK.write(_record(self, dur_s))
        # The slowlog ignores the sampling bit: a span slow enough to
        # cross the threshold is exactly the one you cannot afford to
        # have sampled out.
        if _SLOW is not None and dur_s * 1000.0 >= _SLOW_MS:
            _SLOW.write(_record(self, dur_s, slow_ms=_SLOW_MS))
        return False

    def annotate(self, **attrs: Any) -> None:
        self.attrs.update(attrs)


def span(name: str, **attrs: Any):
    """Open a span under the current context (or start a new trace).

    Returns :data:`NOOP` when tracing is disabled — the call costs one
    flag check, no allocation.
    """
    if not _ENABLED:
        return NOOP
    parent = _CURRENT.get()
    if parent is None:
        trace_id = os.urandom(8).hex()
        parent_id = None
        sampled = _SAMPLE >= 1.0 or int.from_bytes(os.urandom(2), "big") < _SAMPLE * 65536
    else:
        trace_id = parent.trace_id
        parent_id = parent.span_id
        sampled = parent.sampled
    return Span(name, trace_id, parent_id, sampled, attrs)


def current_ids() -> tuple[str | None, str | None]:
    """(trace_id, span_id) of the active span — the audit-event stamp."""
    if not _ENABLED:
        return (None, None)
    cur = _CURRENT.get()
    if cur is None:
        return (None, None)
    return (cur.trace_id, cur.span_id)


def carrier() -> TraceCarrier | None:
    """Snapshot the current context for another thread/process."""
    if not _ENABLED:
        return None
    cur = _CURRENT.get()
    if cur is None:
        return None
    return TraceCarrier(cur.trace_id, cur.span_id, cur.sampled, _PATH, _SAMPLE)


class activate:
    """Context manager installing a carrier as the ambient parent.

    ``activate(None)`` is a no-op, so call sites do not need their own
    disabled checks.
    """

    __slots__ = ("_carrier", "_token")

    def __init__(self, car: TraceCarrier | None):
        self._carrier = car
        self._token = None

    def __enter__(self) -> "activate":
        if self._carrier is not None and _ENABLED:
            c = self._carrier
            self._token = _CURRENT.set(_RemoteParent(c.trace_id, c.span_id, c.sampled))
        return self

    def __exit__(self, *exc: Any) -> bool:
        if self._token is not None:
            _CURRENT.reset(self._token)
            self._token = None
        return False


# -- HTTP propagation --------------------------------------------------------


def header_value() -> str | None:
    """The ``X-Cerfix-Trace`` value for an outgoing RPC, if any."""
    if not _ENABLED:
        return None
    cur = _CURRENT.get()
    if cur is None:
        return None
    return f"{cur.trace_id}-{cur.span_id}-{int(cur.sampled)}"


def parse_header(value: str | None) -> TraceCarrier | None:
    """Parse an incoming header into a carrier (None if absent/bad)."""
    if not value:
        return None
    parts = value.strip().split("-")
    if len(parts) != 3:
        return None
    trace_id, span_id, flag = parts
    if not trace_id or not span_id or flag not in ("0", "1"):
        return None
    return TraceCarrier(trace_id, span_id, flag == "1")


# -- configuration -----------------------------------------------------------


def _env_max_bytes() -> int:
    """The rotation cap in bytes from ``CERFIX_TRACE_MAX_MB`` (0 = off)."""
    raw = os.environ.get("CERFIX_TRACE_MAX_MB", "").strip()
    if not raw:
        return int(DEFAULT_MAX_MB * 1024 * 1024)
    try:
        return max(0, int(float(raw) * 1024 * 1024))
    except ValueError:
        return int(DEFAULT_MAX_MB * 1024 * 1024)


def configure(
    path: str | os.PathLike,
    sample: float = 1.0,
    max_mb: float | None = None,
) -> None:
    """Enable tracing in this process, exporting spans to ``path``.

    The export file rotates once it reaches ``max_mb`` megabytes
    (default :data:`DEFAULT_MAX_MB`, overridable per environment with
    ``CERFIX_TRACE_MAX_MB``; 0 disables rotation): the current file is
    renamed to ``<path>.1`` — replacing any previous ``.1`` — and a
    fresh file is started, so a traced service holds at most ~2× the
    cap on disk.
    """
    global _ENABLED, _PATH, _SAMPLE, _SINK
    if _SINK is not None:
        _SINK.close()
    max_bytes = (
        _env_max_bytes() if max_mb is None else max(0, int(max_mb * 1024 * 1024))
    )
    _PATH = os.fspath(path)
    _SINK = _Sink(_PATH, max_bytes)
    _SAMPLE = max(0.0, min(1.0, float(sample)))
    _ENABLED = True


def configure_slowlog(path: str | os.PathLike, threshold_ms: float = 100.0) -> None:
    """Append spans slower than ``threshold_ms`` to a structured slowlog.

    The slowlog is plain span JSONL (plus a ``slow_ms`` threshold
    stamp) so ``cerfix trace`` reads it directly for offline
    diagnosis. Enabling the slowlog turns span measurement on even if
    no full trace export is configured; slow spans are logged
    regardless of the sampling bit.
    """
    global _ENABLED, _SLOW, _SLOW_MS
    if _SLOW is not None:
        _SLOW.close()
    _SLOW = _Sink(os.fspath(path), _env_max_bytes())
    _SLOW_MS = float(threshold_ms)
    _ENABLED = True


def disable() -> None:
    """Turn tracing off (spans already open export if sampled-in)."""
    global _ENABLED, _PATH, _SAMPLE, _SINK, _SLOW, _SLOW_MS
    _ENABLED = False
    _PATH = None
    _SAMPLE = 1.0
    if _SINK is not None:
        _SINK.close()
    _SINK = None
    if _SLOW is not None:
        _SLOW.close()
    _SLOW = None
    _SLOW_MS = 100.0


def enabled() -> bool:
    return _ENABLED


def export_path() -> str | None:
    return _PATH


def slowlog_path() -> str | None:
    return _SLOW.path if _SLOW is not None else None


def configure_from_env() -> bool:
    """Honour ``CERFIX_TRACE=path[|sample]`` and
    ``CERFIX_SLOW_SPAN=path[|threshold_ms]`` if set; returns whether
    tracing ended up enabled. Shard servers call this at startup so a
    spawned cluster inherits the client's tracing config through the
    environment."""
    slow = os.environ.get("CERFIX_SLOW_SPAN", "").strip()
    if slow:
        path, _, thresh = slow.partition("|")
        try:
            threshold_ms = float(thresh) if thresh else 100.0
        except ValueError:
            threshold_ms = 100.0
        configure_slowlog(path, threshold_ms)
    value = os.environ.get("CERFIX_TRACE", "").strip()
    if not value:
        return _ENABLED
    path, _, rate = value.partition("|")
    try:
        sample = float(rate) if rate else 1.0
    except ValueError:
        sample = 1.0
    configure(path, sample)
    return True


def env_value(path: str, sample: float) -> str:
    """The ``CERFIX_TRACE`` encoding of a (path, sample) config."""
    return path if sample >= 1.0 else f"{path}|{sample:g}"


def slow_env_value(path: str, threshold_ms: float) -> str:
    """The ``CERFIX_SLOW_SPAN`` encoding of a slowlog config."""
    return f"{path}|{threshold_ms:g}"


# -- JSONL export ------------------------------------------------------------


class _Sink:
    """An ``O_APPEND`` JSONL writer: fork-safe, size-rotated.

    Appends are single ``os.write`` lines, so many processes share one
    file without torn lines. The fd is reopened whenever the PID
    changes (forked workers must never share an offset). When the file
    reaches ``max_bytes`` it is renamed to ``<path>.1`` and a fresh
    file started — but only by the process whose fd still points at
    the live file (inode check), so concurrent writers rotate once.
    """

    __slots__ = ("path", "max_bytes", "_fd", "_pid")

    def __init__(self, path: str, max_bytes: int = 0):
        self.path = path
        self.max_bytes = max_bytes
        self._fd: int | None = None
        self._pid: int | None = None

    def close(self) -> None:
        if self._fd is not None:
            try:
                os.close(self._fd)
            except OSError:
                pass
        self._fd = None
        self._pid = None

    def _maybe_rotate(self) -> None:
        if not self.max_bytes or self._fd is None:
            return
        try:
            stat = os.fstat(self._fd)
            if stat.st_size < self.max_bytes:
                return
            # Rotate only if our fd is still the live file — a sibling
            # process may have already renamed it out from under us.
            if os.stat(self.path).st_ino == stat.st_ino:
                os.replace(self.path, self.path + ".1")
        except OSError:
            pass
        self.close()  # next write reopens (and re-creates) the live path

    def write(self, record: dict[str, Any]) -> None:
        pid = os.getpid()
        if self._fd is None or self._pid != pid:
            self.close()
            try:
                self._fd = os.open(
                    self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
                )
            except OSError:
                self._fd = None
                return
            self._pid = pid
        self._maybe_rotate()
        if self._fd is None:
            try:
                self._fd = os.open(
                    self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
                )
            except OSError:
                return
            self._pid = pid
        try:
            os.write(self._fd, (json.dumps(record, default=str) + "\n").encode("utf-8"))
        except OSError:
            pass


def _record(s: Span, dur_s: float, slow_ms: float | None = None) -> dict[str, Any]:
    record: dict[str, Any] = {
        "trace": s.trace_id,
        "span": s.span_id,
        "parent": s.parent_id,
        "name": s.name,
        "ts": round(s._wall, 6),
        "dur_ms": round(dur_s * 1000.0, 3),
        "pid": os.getpid(),
    }
    if slow_ms is not None:
        record["slow_ms"] = slow_ms
    if s.attrs:
        record["attrs"] = s.attrs
    return record
