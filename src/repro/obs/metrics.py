"""Process-wide metrics registry: counters, gauges, latency histograms.

One registry per process (:func:`get_registry`), namespaced metric
names (``cerfix.<surface>.<metric>``), lock-striped so hot paths (the
chase, remote round trips) pay one short critical section per update —
the same contention discipline as the batch probe cache.

Subsystems that already keep their own structured stats (the async
service's ``ServiceMetrics``, the remote store's per-shard stats, a
shard server's request counters, the audit log) register themselves as
**sources**: named zero-argument callables re-exported verbatim under
``dump()["sources"]``. Sources are held weakly (a registered engine or
service must not be kept alive by telemetry) and keyed by name with
last-wins semantics, so re-creating an engine in the same process
simply repoints the source.

The dump schema (``cerfix.metrics.v1``)::

    {"schema": "cerfix.metrics.v1",
     "counters":   {name: int},
     "gauges":     {name: float},
     "histograms": {name: {count, mean_ms, max_ms, p50_ms, p95_ms,
                           p99_ms, buckets: {"<=ms": n}}},
     "sources":    {name: <whatever the source returns>}}
"""

from __future__ import annotations

import threading
import weakref
from bisect import bisect_left
from typing import Any, Callable, Dict

# Exponential bucket upper bounds in milliseconds: 0.05ms doubling to
# ~52s, 21 buckets + overflow. Percentiles report the matching upper
# bound (or the observed max for the overflow bucket) — coarse but
# fixed-cost, which is what a chase-hot-path histogram must be.
BUCKET_BOUNDS_MS: tuple[float, ...] = tuple(0.05 * 2**i for i in range(21))


class Counter:
    """A monotonically increasing integer, guarded by a striped lock."""

    __slots__ = ("name", "_lock", "value")

    def __init__(self, name: str, lock: threading.Lock):
        self.name = name
        self._lock = lock
        self.value = 0

    def inc(self, n: int = 1) -> None:
        with self._lock:
            self.value += n


class Gauge:
    """A last-write-wins numeric level."""

    __slots__ = ("name", "_lock", "value")

    def __init__(self, name: str, lock: threading.Lock):
        self.name = name
        self._lock = lock
        self.value: float | None = None

    def set(self, value: float | None) -> None:
        with self._lock:
            self.value = value


class Histogram:
    """Fixed-bucket latency histogram (observations in **seconds**).

    ``observe`` is the hot path: one ``bisect`` over the precomputed
    bounds plus one short lock. Percentile estimates are bucket upper
    bounds — monotone and stable, never interpolated.
    """

    __slots__ = ("name", "_lock", "counts", "count", "total_ms", "max_ms")

    def __init__(self, name: str, lock: threading.Lock):
        self.name = name
        self._lock = lock
        self.counts = [0] * (len(BUCKET_BOUNDS_MS) + 1)
        self.count = 0
        self.total_ms = 0.0
        self.max_ms = 0.0

    def observe(self, seconds: float) -> None:
        ms = seconds * 1000.0
        idx = bisect_left(BUCKET_BOUNDS_MS, ms)
        with self._lock:
            self.counts[idx] += 1
            self.count += 1
            self.total_ms += ms
            if ms > self.max_ms:
                self.max_ms = ms

    def to_json(self) -> dict[str, Any]:
        with self._lock:
            counts = list(self.counts)
            count, total_ms, max_ms = self.count, self.total_ms, self.max_ms

        def percentile(q: float) -> float:
            """Upper bound of the bucket holding the q-quantile observation."""
            target = q * count
            seen = 0
            for idx, n in enumerate(counts):
                seen += n
                if seen >= target and n:
                    if idx >= len(BUCKET_BOUNDS_MS):
                        return max_ms
                    return BUCKET_BOUNDS_MS[idx]
            return max_ms

        buckets = {
            f"<={BUCKET_BOUNDS_MS[i]:g}": n
            for i, n in enumerate(counts[:-1])
            if n
        }
        if counts[-1]:
            buckets["+inf"] = counts[-1]
        return {
            "count": count,
            "mean_ms": round(total_ms / count, 4) if count else 0.0,
            "max_ms": round(max_ms, 4),
            "p50_ms": round(percentile(0.50), 4),
            "p95_ms": round(percentile(0.95), 4),
            "p99_ms": round(percentile(0.99), 4),
            "buckets": buckets,
        }


class MetricsRegistry:
    """Get-or-create named instruments plus weakly-held stat sources."""

    def __init__(self, stripes: int = 16):
        self._stripes = tuple(threading.Lock() for _ in range(stripes))
        self._meta = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._sources: Dict[str, Callable[[], Any]] = {}

    def _lock_for(self, name: str) -> threading.Lock:
        return self._stripes[hash(name) % len(self._stripes)]

    # -- instruments (get-or-create; dict reads are GIL-atomic) ----------

    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)
        if c is None:
            with self._meta:
                c = self._counters.setdefault(name, Counter(name, self._lock_for(name)))
        return c

    def gauge(self, name: str) -> Gauge:
        g = self._gauges.get(name)
        if g is None:
            with self._meta:
                g = self._gauges.setdefault(name, Gauge(name, self._lock_for(name)))
        return g

    def histogram(self, name: str) -> Histogram:
        h = self._histograms.get(name)
        if h is None:
            with self._meta:
                h = self._histograms.setdefault(
                    name, Histogram(name, self._lock_for(name))
                )
        return h

    # -- conveniences ----------------------------------------------------

    def inc(self, name: str, n: int = 1) -> None:
        self.counter(name).inc(n)

    def set_gauge(self, name: str, value: float | None) -> None:
        self.gauge(name).set(value)

    def observe(self, name: str, seconds: float) -> None:
        self.histogram(name).observe(seconds)

    def counter_value(self, name: str) -> int:
        c = self._counters.get(name)
        return c.value if c is not None else 0

    def gauge_value(self, name: str, default: float | None = None) -> float | None:
        g = self._gauges.get(name)
        return g.value if g is not None and g.value is not None else default

    # -- sources ---------------------------------------------------------

    def register_source(self, name: str, fn: Callable[[], Any]) -> None:
        """Register ``fn`` to be re-exported under ``dump()["sources"]``.

        Bound methods are held via :class:`weakref.WeakMethod` so the
        registry never pins a dead engine/service; plain functions are
        held strongly. Registering the same name again replaces the
        previous source (last wins).
        """
        ref: Callable[[], Any]
        try:
            ref = weakref.WeakMethod(fn)  # type: ignore[arg-type]
        except TypeError:
            ref = lambda fn=fn: fn  # noqa: E731 — uniform deref shape
        with self._meta:
            self._sources[name] = ref

    def dump(self) -> dict[str, Any]:
        """One JSON-able snapshot of everything — the registry schema."""
        with self._meta:
            counters = list(self._counters.values())
            gauges = list(self._gauges.values())
            histograms = list(self._histograms.values())
            sources = dict(self._sources)
        out: dict[str, Any] = {
            "schema": "cerfix.metrics.v1",
            "counters": {c.name: c.value for c in counters},
            "gauges": {g.name: g.value for g in gauges if g.value is not None},
            "histograms": {h.name: h.to_json() for h in histograms},
            "sources": {},
        }
        dead = []
        for name, ref in sources.items():
            fn = ref()
            if fn is None:
                dead.append(name)
                continue
            try:
                out["sources"][name] = fn()
            except Exception as exc:  # a broken source must not kill /metrics
                out["sources"][name] = {"error": f"{type(exc).__name__}: {exc}"}
        if dead:
            with self._meta:
                for name in dead:
                    if self._sources.get(name) is sources[name]:
                        del self._sources[name]
        return out


_GLOBAL = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide registry every subsystem shares."""
    return _GLOBAL
