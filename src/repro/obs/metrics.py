"""Process-wide metrics registry: counters, gauges, latency histograms.

One registry per process (:func:`get_registry`), namespaced metric
names (``cerfix.<surface>.<metric>``), lock-striped so hot paths (the
chase, remote round trips) pay one short critical section per update —
the same contention discipline as the batch probe cache.

Subsystems that already keep their own structured stats (the async
service's ``ServiceMetrics``, the remote store's per-shard stats, a
shard server's request counters, the audit log) register themselves as
**sources**: named zero-argument callables re-exported verbatim under
``dump()["sources"]``. Sources are held weakly (a registered engine or
service must not be kept alive by telemetry) and keyed by name with
last-wins semantics, so re-creating an engine in the same process
simply repoints the source.

The dump schema (``cerfix.metrics.v1``)::

    {"schema": "cerfix.metrics.v1",
     "counters":   {name: int},
     "gauges":     {name: float},
     "histograms": {name: {count, mean_ms, max_ms, p50_ms, p95_ms,
                           p99_ms, buckets: {"<=ms": n}}},
     "sources":    {name: <whatever the source returns>}}

Gauges come in two flavours: last-write-wins levels (:meth:`set_gauge`)
and *callable* gauges (:meth:`register_gauge`) evaluated at dump time —
what per-process self-stats (``cerfix.proc.rss_bytes``, ``open_fds``)
use, since their value is only meaningful when somebody scrapes it.

The registry also keeps a bounded **snapshot history ring**
(:meth:`record_snapshot` / :meth:`rates`): timestamped slim snapshots
of every counter and histogram, from which delta rates (probes/s,
requests/s) and windowed latency percentiles are derived. The scrape
endpoints record a snapshot per scrape, so two scrapes apart are
enough for rates-over-time — no background thread involved.
"""

from __future__ import annotations

import math
import threading
import time
import weakref
from bisect import bisect_left
from collections import deque
from typing import Any, Callable, Dict

# Exponential bucket upper bounds in milliseconds: 0.05ms doubling to
# ~52s, 21 buckets + overflow. Percentiles report the matching upper
# bound (or the observed max for the overflow bucket) — coarse but
# fixed-cost, which is what a chase-hot-path histogram must be.
BUCKET_BOUNDS_MS: tuple[float, ...] = tuple(0.05 * 2**i for i in range(21))


def bucket_percentile(
    counts: list[int] | tuple[int, ...],
    count: int,
    max_ms: float,
    q: float,
) -> float:
    """The q-quantile estimate of a fixed-bucket distribution, in ms.

    ``counts`` is one occupancy per :data:`BUCKET_BOUNDS_MS` bound plus
    the overflow bucket. Nearest-rank over bucket upper bounds, clamped
    to the observed max — so the zero-observation distribution answers
    0.0 (not an arbitrary bound), a single observation answers the same
    well-defined value for every quantile, and no estimate ever exceeds
    a value actually seen. Shared by :meth:`Histogram.to_json` and the
    cluster monitor's windowed (delta-histogram) percentiles.
    """
    if count <= 0:
        return 0.0
    target = max(1, math.ceil(q * count))
    seen = 0
    for idx, n in enumerate(counts):
        if not n:
            continue
        seen += n
        if seen >= target:
            if idx >= len(BUCKET_BOUNDS_MS):
                return max_ms
            return min(BUCKET_BOUNDS_MS[idx], max_ms)
    return max_ms


class Counter:
    """A monotonically increasing integer, guarded by a striped lock."""

    __slots__ = ("name", "_lock", "value")

    def __init__(self, name: str, lock: threading.Lock):
        self.name = name
        self._lock = lock
        self.value = 0

    def inc(self, n: int = 1) -> None:
        with self._lock:
            self.value += n


class Gauge:
    """A last-write-wins numeric level."""

    __slots__ = ("name", "_lock", "value")

    def __init__(self, name: str, lock: threading.Lock):
        self.name = name
        self._lock = lock
        self.value: float | None = None

    def set(self, value: float | None) -> None:
        with self._lock:
            self.value = value


class Histogram:
    """Fixed-bucket latency histogram (observations in **seconds**).

    ``observe`` is the hot path: one ``bisect`` over the precomputed
    bounds plus one short lock. Percentile estimates are bucket upper
    bounds — monotone and stable, never interpolated.
    """

    __slots__ = ("name", "_lock", "counts", "count", "total_ms", "max_ms")

    def __init__(self, name: str, lock: threading.Lock):
        self.name = name
        self._lock = lock
        self.counts = [0] * (len(BUCKET_BOUNDS_MS) + 1)
        self.count = 0
        self.total_ms = 0.0
        self.max_ms = 0.0

    def observe(self, seconds: float) -> None:
        ms = seconds * 1000.0
        idx = bisect_left(BUCKET_BOUNDS_MS, ms)
        with self._lock:
            self.counts[idx] += 1
            self.count += 1
            self.total_ms += ms
            if ms > self.max_ms:
                self.max_ms = ms

    def snapshot(self) -> tuple[list[int], int, float, float]:
        """One consistent ``(counts, count, total_ms, max_ms)`` read."""
        with self._lock:
            return list(self.counts), self.count, self.total_ms, self.max_ms

    def to_json(self) -> dict[str, Any]:
        counts, count, total_ms, max_ms = self.snapshot()

        def percentile(q: float) -> float:
            return bucket_percentile(counts, count, max_ms, q)

        buckets = {
            f"<={BUCKET_BOUNDS_MS[i]:g}": n
            for i, n in enumerate(counts[:-1])
            if n
        }
        if counts[-1]:
            buckets["+inf"] = counts[-1]
        return {
            "count": count,
            "mean_ms": round(total_ms / count, 4) if count else 0.0,
            "max_ms": round(max_ms, 4),
            "p50_ms": round(percentile(0.50), 4),
            "p95_ms": round(percentile(0.95), 4),
            "p99_ms": round(percentile(0.99), 4),
            "buckets": buckets,
        }


class MetricsRegistry:
    """Get-or-create named instruments plus weakly-held stat sources."""

    def __init__(self, stripes: int = 16, history: int = 120):
        self._stripes = tuple(threading.Lock() for _ in range(stripes))
        self._meta = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._sources: Dict[str, Callable[[], Any]] = {}
        self._gauge_fns: Dict[str, Callable[[], float | None]] = {}
        self._history: deque[dict[str, Any]] = deque(maxlen=history)

    def _lock_for(self, name: str) -> threading.Lock:
        return self._stripes[hash(name) % len(self._stripes)]

    # -- instruments (get-or-create; dict reads are GIL-atomic) ----------

    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)
        if c is None:
            with self._meta:
                c = self._counters.setdefault(name, Counter(name, self._lock_for(name)))
        return c

    def gauge(self, name: str) -> Gauge:
        g = self._gauges.get(name)
        if g is None:
            with self._meta:
                g = self._gauges.setdefault(name, Gauge(name, self._lock_for(name)))
        return g

    def histogram(self, name: str) -> Histogram:
        h = self._histograms.get(name)
        if h is None:
            with self._meta:
                h = self._histograms.setdefault(
                    name, Histogram(name, self._lock_for(name))
                )
        return h

    # -- conveniences ----------------------------------------------------

    def inc(self, name: str, n: int = 1) -> None:
        self.counter(name).inc(n)

    def set_gauge(self, name: str, value: float | None) -> None:
        self.gauge(name).set(value)

    def observe(self, name: str, seconds: float) -> None:
        self.histogram(name).observe(seconds)

    def counter_value(self, name: str) -> int:
        c = self._counters.get(name)
        return c.value if c is not None else 0

    def gauge_value(self, name: str, default: float | None = None) -> float | None:
        g = self._gauges.get(name)
        return g.value if g is not None and g.value is not None else default

    def register_gauge(self, name: str, fn: Callable[[], float | None]) -> None:
        """Register a zero-argument callable evaluated at ``dump()`` time.

        Callable gauges are what per-process self-stats use: the value
        (RSS, open fds, thread count) is only meaningful at scrape time.
        Held strongly — they close over module state, not an engine —
        and keyed by name with last-wins semantics. A callable that
        raises or returns ``None`` is simply omitted from that dump.
        """
        with self._meta:
            self._gauge_fns[name] = fn

    # -- sources ---------------------------------------------------------

    def register_source(self, name: str, fn: Callable[[], Any]) -> None:
        """Register ``fn`` to be re-exported under ``dump()["sources"]``.

        Bound methods are held via :class:`weakref.WeakMethod` so the
        registry never pins a dead engine/service; plain functions are
        held strongly. Registering the same name again replaces the
        previous source (last wins).
        """
        ref: Callable[[], Any]
        try:
            ref = weakref.WeakMethod(fn)  # type: ignore[arg-type]
        except TypeError:
            ref = lambda fn=fn: fn  # noqa: E731 — uniform deref shape
        with self._meta:
            self._sources[name] = ref

    def dump(self) -> dict[str, Any]:
        """One JSON-able snapshot of everything — the registry schema."""
        with self._meta:
            counters = list(self._counters.values())
            gauges = list(self._gauges.values())
            histograms = list(self._histograms.values())
            sources = dict(self._sources)
            gauge_fns = dict(self._gauge_fns)
        out: dict[str, Any] = {
            "schema": "cerfix.metrics.v1",
            "counters": {c.name: c.value for c in counters},
            "gauges": {g.name: g.value for g in gauges if g.value is not None},
            "histograms": {h.name: h.to_json() for h in histograms},
            "sources": {},
        }
        for name, gfn in gauge_fns.items():
            try:
                value = gfn()
            except Exception:  # a broken self-gauge must not kill /metrics
                continue
            if value is not None:
                out["gauges"][name] = value
        dead = []
        for name, ref in sources.items():
            fn = ref()
            if fn is None:
                dead.append(name)
                continue
            try:
                out["sources"][name] = fn()
            except Exception as exc:  # a broken source must not kill /metrics
                out["sources"][name] = {"error": f"{type(exc).__name__}: {exc}"}
        if dead:
            with self._meta:
                for name in dead:
                    if self._sources.get(name) is sources[name]:
                        del self._sources[name]
        return out

    # -- snapshot history / rates ----------------------------------------

    def record_snapshot(self, ts: float | None = None) -> dict[str, Any]:
        """Append a slim timestamped snapshot to the history ring.

        Snapshots hold raw counter values and raw histogram state (not
        the derived :meth:`Histogram.to_json` view) so :meth:`rates`
        can subtract two of them to get windowed delta-distributions.
        Sources are deliberately excluded — a snapshot must stay cheap
        enough to take on every scrape.
        """
        with self._meta:
            counters = list(self._counters.values())
            histograms = list(self._histograms.values())
        snap: dict[str, Any] = {
            "ts": time.time() if ts is None else ts,
            "counters": {c.name: c.value for c in counters},
            "histograms": {},
        }
        for h in histograms:
            counts, count, total_ms, max_ms = h.snapshot()
            snap["histograms"][h.name] = {
                "counts": counts,
                "count": count,
                "total_ms": total_ms,
                "max_ms": max_ms,
            }
        self._history.append(snap)
        return snap

    def history(self) -> list[dict[str, Any]]:
        """The retained snapshots, oldest first."""
        return list(self._history)

    def rates(self, window_s: float | None = None) -> dict[str, Any]:
        """Delta rates between the newest snapshot and the oldest one
        inside ``window_s`` (or the oldest retained, if ``None``).

        Returns ``{"window_s", "counters_per_s": {name: rate},
        "histograms": {name: {count_per_s, mean_ms, p50_ms, p95_ms,
        p99_ms}}}`` computed from the *delta* distribution, i.e. only
        observations made inside the window. Needs two snapshots spaced
        in time; answers an empty window otherwise.
        """
        snaps = self.history()
        empty = {"window_s": 0.0, "counters_per_s": {}, "histograms": {}}
        if len(snaps) < 2:
            return empty
        new = snaps[-1]
        old = snaps[0]
        if window_s is not None:
            cutoff = new["ts"] - window_s
            for snap in snaps[:-1]:
                if snap["ts"] >= cutoff:
                    old = snap
                    break
        dt = new["ts"] - old["ts"]
        if dt <= 0:
            return empty
        out: dict[str, Any] = {
            "window_s": round(dt, 3),
            "counters_per_s": {},
            "histograms": {},
        }
        for name, value in new["counters"].items():
            delta = value - old["counters"].get(name, 0)
            out["counters_per_s"][name] = round(delta / dt, 4)
        for name, h_new in new["histograms"].items():
            h_old = old["histograms"].get(name)
            if h_old is None:
                h_old = {"counts": [0] * len(h_new["counts"]), "count": 0, "total_ms": 0.0}
            d_counts = [a - b for a, b in zip(h_new["counts"], h_old["counts"])]
            d_count = h_new["count"] - h_old["count"]
            d_total = h_new["total_ms"] - h_old["total_ms"]
            max_ms = h_new["max_ms"]
            out["histograms"][name] = {
                "count_per_s": round(d_count / dt, 4),
                "mean_ms": round(d_total / d_count, 4) if d_count > 0 else 0.0,
                "p50_ms": round(bucket_percentile(d_counts, d_count, max_ms, 0.50), 4),
                "p95_ms": round(bucket_percentile(d_counts, d_count, max_ms, 0.95), 4),
                "p99_ms": round(bucket_percentile(d_counts, d_count, max_ms, 0.99), 4),
            }
        return out


_GLOBAL = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide registry every subsystem shares."""
    return _GLOBAL
