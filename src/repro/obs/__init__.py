"""Unified telemetry: one metrics registry, trace-correlated spans.

The subsystem has two halves, both stdlib-only and process-wide:

* :mod:`repro.obs.metrics` — a lock-striped :class:`MetricsRegistry`
  (counters, gauges, fixed-bucket latency histograms) that absorbs the
  previously ad-hoc metric surfaces (``ServiceMetrics``, remote
  per-shard stats, probe-cache counters, audit stats) under one
  namespaced ``cerfix.metrics.v1`` dump.
* :mod:`repro.obs.trace` — context-propagated spans with trace/span
  ids that cross thread pools, process pools and the remote-store HTTP
  boundary (``X-Cerfix-Trace``), exported as sampled JSONL. Disabled
  tracing costs one module-flag check per call site; the bench guard
  (``benchmarks/bench_obs_overhead.py``) holds that to ≤2% throughput
  overhead.

``cerfix trace <file>`` (:mod:`repro.obs.tracecli`) renders exported
span files as per-trace flame summaries with critical-path latency.
"""

from repro.obs.metrics import MetricsRegistry, get_registry
from repro.obs.trace import TraceCarrier, span

__all__ = ["MetricsRegistry", "get_registry", "TraceCarrier", "span"]
