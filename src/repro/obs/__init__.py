"""Unified telemetry: one metrics registry, trace-correlated spans.

The subsystem has four halves, all stdlib-only and process-wide:

* :mod:`repro.obs.metrics` — a lock-striped :class:`MetricsRegistry`
  (counters, gauges, fixed-bucket latency histograms) that absorbs the
  previously ad-hoc metric surfaces (``ServiceMetrics``, remote
  per-shard stats, probe-cache counters, audit stats) under one
  namespaced ``cerfix.metrics.v1`` dump, plus a bounded snapshot
  history ring for delta rates (probes/s, error rate).
* :mod:`repro.obs.trace` — context-propagated spans with trace/span
  ids that cross thread pools, process pools and the remote-store HTTP
  boundary (``X-Cerfix-Trace``), exported as size-rotated sampled
  JSONL (``CERFIX_TRACE_MAX_MB``) with a slow-span log
  (``CERFIX_SLOW_SPAN``). Disabled tracing costs one module-flag check
  per call site; the bench guard
  (``benchmarks/bench_obs_overhead.py``) holds that to ≤2% throughput
  overhead.
* :mod:`repro.obs.promfmt` — Prometheus text exposition (format
  0.0.4) of registry dumps, served by every ``/metrics`` endpoint via
  ``?format=prometheus``.
* :mod:`repro.obs.monitor` — the fleet scraper: per-process
  self-gauges, :class:`ClusterMonitor` merging every replica's scrape
  into one health rollup, and the renderers behind ``cerfix health`` /
  ``cerfix top``.

``cerfix trace <file>`` (:mod:`repro.obs.tracecli`) renders exported
span and slowlog files as per-trace flame summaries with critical-path
latency.
"""

from repro.obs.metrics import MetricsRegistry, get_registry
from repro.obs.monitor import ClusterMonitor, install_process_gauges
from repro.obs.trace import TraceCarrier, span

__all__ = [
    "MetricsRegistry",
    "get_registry",
    "ClusterMonitor",
    "install_process_gauges",
    "TraceCarrier",
    "span",
]
