"""``cerfix trace <file>`` — render exported span JSONL.

Groups spans by trace id, rebuilds the span tree (across pids — the
executor workers and shard servers append to the same file), and
prints per-trace flame summaries, per-stage latency aggregates and the
critical path (the deepest chain of maximum-duration children).
Orphan spans — a parent id that never appears in the file, e.g. a
sampled child of an unexported remote parent — are flagged and treated
as extra roots rather than dropped.

``--audit log.jsonl`` joins audit events (stamped with trace/span ids
by :mod:`repro.audit`) onto the spans that produced them: the
QFix-style seam from "this fix" back to "this probe on this shard".
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable


@dataclass
class SpanNode:
    trace_id: str
    span_id: str
    parent_id: str | None
    name: str
    ts: float
    dur_ms: float
    pid: int
    attrs: dict[str, Any] = field(default_factory=dict)
    children: list["SpanNode"] = field(default_factory=list)
    orphan: bool = False
    fixes: int = 0


@dataclass
class Trace:
    trace_id: str
    roots: list[SpanNode]
    spans: dict[str, SpanNode]
    orphans: list[SpanNode]

    @property
    def pids(self) -> set[int]:
        return {s.pid for s in self.spans.values()}

    @property
    def duration_ms(self) -> float:
        return max((r.dur_ms for r in self.roots), default=0.0)

    def critical_path(self) -> list[SpanNode]:
        """Root → longest child → ... — where the wall time went."""
        if not self.roots:
            return []
        node = max(self.roots, key=lambda s: s.dur_ms)
        path = [node]
        while node.children:
            node = max(node.children, key=lambda s: s.dur_ms)
            path.append(node)
        return path


def load_spans(path: Path | str) -> list[SpanNode]:
    """Parse a span JSONL file, skipping unparseable lines."""
    spans: list[SpanNode] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
                spans.append(
                    SpanNode(
                        trace_id=str(rec["trace"]),
                        span_id=str(rec["span"]),
                        parent_id=rec.get("parent"),
                        name=str(rec.get("name", "?")),
                        ts=float(rec.get("ts", 0.0)),
                        dur_ms=float(rec.get("dur_ms", 0.0)),
                        pid=int(rec.get("pid", 0)),
                        attrs=dict(rec.get("attrs") or {}),
                    )
                )
            except (ValueError, KeyError, TypeError):
                continue
    return spans


def build_traces(spans: Iterable[SpanNode]) -> list[Trace]:
    """Group spans into per-trace trees, flagging orphans as roots."""
    by_trace: dict[str, list[SpanNode]] = {}
    for s in spans:
        by_trace.setdefault(s.trace_id, []).append(s)
    traces: list[Trace] = []
    for trace_id, members in by_trace.items():
        index = {s.span_id: s for s in members}
        roots: list[SpanNode] = []
        orphans: list[SpanNode] = []
        for s in members:
            s.children = []
        for s in sorted(members, key=lambda s: s.ts):
            if s.parent_id is None:
                roots.append(s)
            elif s.parent_id in index:
                index[s.parent_id].children.append(s)
            else:
                s.orphan = True
                orphans.append(s)
                roots.append(s)
        traces.append(Trace(trace_id, roots, index, orphans))
    traces.sort(key=lambda t: min((s.ts for s in t.spans.values()), default=0.0))
    return traces


def stage_latency(spans: Iterable[SpanNode]) -> dict[str, dict[str, float]]:
    """Per-span-name aggregates: count / total / mean / max (ms)."""
    agg: dict[str, dict[str, float]] = {}
    for s in spans:
        row = agg.setdefault(s.name, {"count": 0, "total_ms": 0.0, "max_ms": 0.0})
        row["count"] += 1
        row["total_ms"] += s.dur_ms
        row["max_ms"] = max(row["max_ms"], s.dur_ms)
    for row in agg.values():
        row["mean_ms"] = row["total_ms"] / row["count"] if row["count"] else 0.0
    return agg


def join_audit(traces: Iterable[Trace], audit_path: Path | str) -> tuple[int, int]:
    """Attach audit-event counts to spans; returns (joined, total)."""
    index: dict[str, SpanNode] = {}
    for t in traces:
        index.update(t.spans)
    joined = total = 0
    with open(audit_path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except ValueError:
                continue
            total += 1
            node = index.get(event.get("span_id") or "")
            if node is not None:
                node.fixes += 1
                joined += 1
    return joined, total


def _flame_lines(node: SpanNode, depth: int, out: list[str]) -> None:
    # Collapse same-name sibling groups past the first few — a batch
    # run has hundreds of group-chase spans; the summary should not.
    label = node.name
    extra = f"  ✎{node.fixes}" if node.fixes else ""
    orphan = "  [orphan parent]" if node.orphan else ""
    out.append(
        f"  {'  ' * depth}{label:<{max(4, 34 - 2 * depth)}}"
        f"{node.dur_ms:>10.2f} ms  pid {node.pid}{extra}{orphan}"
    )
    groups: dict[str, list[SpanNode]] = {}
    for child in node.children:
        groups.setdefault(child.name, []).append(child)
    for name, members in groups.items():
        members.sort(key=lambda s: s.dur_ms, reverse=True)
        shown = members[:3]
        for child in shown:
            _flame_lines(child, depth + 1, out)
        rest = members[len(shown) :]
        if rest:
            total = sum(s.dur_ms for s in rest)
            out.append(
                f"  {'  ' * (depth + 1)}… {len(rest)} more {name!r}"
                f"{total:>{max(4, 26 - 2 * depth)}.2f} ms total"
            )


def render(traces: list[Trace], all_spans: list[SpanNode]) -> str:
    lines: list[str] = []
    for t in traces:
        lines.append(
            f"trace {t.trace_id} — {len(t.spans)} span(s), "
            f"{len(t.pids)} process(es), {t.duration_ms:.2f} ms"
        )
        if t.orphans:
            lines.append(
                f"  ! {len(t.orphans)} orphan span(s) "
                f"(parent never exported — raise the sample rate?)"
            )
        for root in t.roots:
            _flame_lines(root, 0, lines)
        path = t.critical_path()
        if len(path) > 1:
            chain = " → ".join(f"{s.name} ({s.dur_ms:.1f} ms)" for s in path)
            lines.append(f"  critical path: {chain}")
        lines.append("")
    lines.append("per-stage latency:")
    agg = stage_latency(all_spans)
    name_w = max((len(n) for n in agg), default=5)
    lines.append(
        f"  {'stage':<{name_w}}  {'count':>6}  {'total ms':>10}  "
        f"{'mean ms':>9}  {'max ms':>9}"
    )
    for name, row in sorted(agg.items(), key=lambda kv: -kv[1]["total_ms"]):
        lines.append(
            f"  {name:<{name_w}}  {int(row['count']):>6}  {row['total_ms']:>10.2f}  "
            f"{row['mean_ms']:>9.2f}  {row['max_ms']:>9.2f}"
        )
    return "\n".join(lines)


def run(args: Any) -> int:
    """Entry point for the ``cerfix trace`` subcommand."""
    path = Path(args.file)
    if not path.exists():
        print(f"no such span file: {path}")
        return 2
    spans = load_spans(path)
    if not spans:
        print(f"{path}: no spans")
        return 1
    traces = build_traces(spans)
    if getattr(args, "trace_id", None):
        traces = [t for t in traces if t.trace_id.startswith(args.trace_id)]
        if not traces:
            print(f"no trace matching id prefix {args.trace_id!r}")
            return 1
    audit_note = ""
    if getattr(args, "audit", None):
        joined, total = join_audit(traces, args.audit)
        audit_note = f"\naudit join: {joined}/{total} events matched to spans"
    shown = {s.span_id for t in traces for s in t.spans.values()}
    print(render(traces, [s for s in spans if s.span_id in shown]) + audit_note)
    return 0
