"""Prometheus text exposition (format 0.0.4) for registry dumps.

Renders a :meth:`MetricsRegistry.dump` snapshot — the JSON every
``/metrics`` endpoint already serves — as the Prometheus text format,
so a stock Prometheus server can scrape any CerFix process directly:

* counters get the conventional ``_total`` suffix and a
  ``# TYPE <name> counter`` line;
* gauges keep their name with ``# TYPE <name> gauge``;
* histograms are re-derived from the dump's per-bucket occupancies
  into *cumulative* ``<name>_bucket{le="<seconds>"}`` samples (the
  dump stores non-cumulative millisecond buckets), plus the required
  ``+Inf`` bucket, ``_sum`` (seconds) and ``_count``;
* dotted CerFix names are sanitized to the Prometheus charset
  (``cerfix.remote.failovers`` → ``cerfix_remote_failovers_total``).

``sources`` (free-form nested stats) are deliberately not rendered —
they have no fixed schema; the flat instruments are the contract.

:func:`render_labeled` renders several dumps into one page with a
label set per dump (``{"shard": "0", "replica": "1"}``), which is what
the cluster monitor uses to expose a whole fleet at once. The text
format requires every sample of a metric family to sit in one
contiguous group under a single ``# TYPE`` line, so rendering collects
samples per family first and emits family-by-family.
"""

from __future__ import annotations

import re
from typing import Any, Dict, Iterable, Tuple

from .metrics import BUCKET_BOUNDS_MS

CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_INVALID_CHARS = re.compile(r"[^a-zA-Z0-9_:]")
_INVALID_FIRST = re.compile(r"^[^a-zA-Z_:]")
_INVALID_LABEL_CHARS = re.compile(r"[^a-zA-Z0-9_]")


def sanitize_name(name: str) -> str:
    """Map an arbitrary metric name onto ``[a-zA-Z_:][a-zA-Z0-9_:]*``."""
    out = _INVALID_CHARS.sub("_", name)
    if not out:
        return "_"
    if _INVALID_FIRST.match(out):
        out = "_" + out
    return out


def sanitize_label_name(name: str) -> str:
    """Label names are narrower than metric names: no colons allowed."""
    out = _INVALID_LABEL_CHARS.sub("_", name)
    if not out:
        return "_"
    if _INVALID_FIRST.match(out):
        out = "_" + out
    return out


def escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _labels_text(labels: Dict[str, str] | None, extra: str = "") -> str:
    parts = [
        f'{sanitize_label_name(k)}="{escape_label_value(str(v))}"'
        for k, v in (labels or {}).items()
    ]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _parse_bucket_key(key: str) -> float:
    """Dump bucket keys are ``"<=<ms>"`` or ``"+inf"``; answer the
    upper bound in milliseconds (``inf`` for the overflow bucket)."""
    if key == "+inf":
        return float("inf")
    return float(key[2:])


class _Families:
    """Samples grouped per metric family, first-seen order preserved."""

    def __init__(self) -> None:
        self._order: list[str] = []
        self._families: Dict[str, tuple[str, list[str]]] = {}

    def add(self, family: str, kind: str, sample: str) -> None:
        entry = self._families.get(family)
        if entry is None:
            entry = (kind, [])
            self._families[family] = entry
            self._order.append(family)
        entry[1].append(sample)

    def text(self) -> str:
        lines: list[str] = []
        for family in self._order:
            kind, samples = self._families[family]
            lines.append(f"# TYPE {family} {kind}")
            lines.extend(samples)
        return "\n".join(lines) + "\n" if lines else ""


def _add_histogram(
    fams: _Families,
    name: str,
    hist: Dict[str, Any],
    labels: Dict[str, str] | None,
) -> None:
    count = int(hist.get("count", 0))
    mean_ms = float(hist.get("mean_ms", 0.0))
    occupancy: Dict[float, int] = {}
    for key, n in hist.get("buckets", {}).items():
        occupancy[_parse_bucket_key(key)] = int(n)
    cumulative = 0
    for bound_ms in BUCKET_BOUNDS_MS:
        cumulative += occupancy.get(bound_ms, 0)
        le = _format_value(bound_ms / 1000.0)
        label_text = _labels_text(labels, f'le="{le}"')
        fams.add(name, "histogram", f"{name}_bucket{label_text} {cumulative}")
    label_text = _labels_text(labels, 'le="+Inf"')
    fams.add(name, "histogram", f"{name}_bucket{label_text} {count}")
    plain = _labels_text(labels)
    total_s = _format_value(mean_ms * count / 1000.0)
    fams.add(name, "histogram", f"{name}_sum{plain} {total_s}")
    fams.add(name, "histogram", f"{name}_count{plain} {count}")


def _add_dump(
    fams: _Families,
    dump: Dict[str, Any],
    labels: Dict[str, str] | None,
) -> None:
    for raw_name, value in sorted(dump.get("counters", {}).items()):
        name = sanitize_name(raw_name)
        if not name.endswith("_total"):
            name += "_total"
        fams.add(name, "counter", f"{name}{_labels_text(labels)} {_format_value(value)}")
    for raw_name, value in sorted(dump.get("gauges", {}).items()):
        name = sanitize_name(raw_name)
        fams.add(name, "gauge", f"{name}{_labels_text(labels)} {_format_value(value)}")
    for raw_name, hist in sorted(dump.get("histograms", {}).items()):
        _add_histogram(fams, sanitize_name(raw_name), hist, labels)


def render(dump: Dict[str, Any], labels: Dict[str, str] | None = None) -> str:
    """Render one registry dump as Prometheus text (trailing newline)."""
    fams = _Families()
    _add_dump(fams, dump, labels)
    return fams.text()


def render_labeled(
    dumps: Iterable[Tuple[Dict[str, str], Dict[str, Any]]],
) -> str:
    """Render ``[(labels, dump), ...]`` into one page.

    The same instrument from many replicas becomes one family with one
    ``# TYPE`` line and a distinctly-labelled sample per replica.
    """
    fams = _Families()
    for labels, dump in dumps:
        _add_dump(fams, dump, labels)
    return fams.text()
