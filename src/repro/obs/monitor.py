"""Cluster monitoring plane: fleet scraper, health rollup, `top` view.

PR 7 gave every process a ``/metrics`` endpoint and PR 8 made the
fleet survive replica loss — but each process is still an island: an
opened circuit is invisible unless you curl the right replica. This
module is the fleet-wide view:

* :func:`install_process_gauges` registers per-process self-gauges
  (``cerfix.proc.rss_bytes``, ``open_fds``, ``threads``,
  ``uptime_seconds``) on the process-wide registry — called by shard
  servers, both explorers and the async service at startup, so every
  scrape answers who is eating memory and leaking descriptors.
* :class:`ClusterMonitor` polls every shard replica's ``/metrics`` +
  ``/healthz`` and (optionally) the entry service, merging the dumps
  into one namespaced cluster snapshot (``cerfix.cluster.v1``) with a
  health **rollup**: per-replica up/down, open circuits (both
  monitor-observed and the client-side breakers reported by the
  service's ``remote_store`` source), per-shard digest agreement, and
  scrape staleness.
* :meth:`ClusterMonitor.rates` derives fleet-wide rates-over-time
  (probes/s, requests/s, error rate, failovers/min) and per-shard
  windowed latency percentiles from consecutive snapshots — delta
  histograms, not lifetime aggregates.
* :func:`render_top` / :func:`describe_rollup` turn a snapshot into
  the curses-free ``cerfix top`` dashboard and the ``cerfix health``
  report lines.

The monitor is a pure HTTP client over the existing wire surfaces —
it needs no new endpoint on the servers and works against in-process
and spawned clusters alike.
"""

from __future__ import annotations

import http.client
import json
import os
import threading
import time
from collections import deque
from typing import Any, Dict, List, Sequence, Tuple

from repro.errors import ScrapeError

from .metrics import BUCKET_BOUNDS_MS, MetricsRegistry, bucket_percentile, get_registry

_PROC_START = time.monotonic()


# -- per-process self-gauges -------------------------------------------------


def _rss_bytes() -> float | None:
    try:
        with open("/proc/self/statm", "rb") as fh:
            fields = fh.read().split()
        return int(fields[1]) * os.sysconf("SC_PAGE_SIZE")
    except (OSError, IndexError, ValueError):
        pass
    try:
        import resource

        return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024.0
    except Exception:
        return None


def _open_fds() -> float | None:
    try:
        return float(len(os.listdir("/proc/self/fd")))
    except OSError:
        return None


def install_process_gauges(registry: MetricsRegistry | None = None) -> None:
    """Register the per-process self-gauges on ``registry``.

    Evaluated lazily at dump time (see
    :meth:`MetricsRegistry.register_gauge`), so an idle process pays
    nothing. Safe to call repeatedly — registration is last-wins.
    """
    reg = registry if registry is not None else get_registry()
    reg.register_gauge("cerfix.proc.rss_bytes", _rss_bytes)
    reg.register_gauge("cerfix.proc.open_fds", _open_fds)
    reg.register_gauge(
        "cerfix.proc.threads", lambda: float(threading.active_count())
    )
    reg.register_gauge(
        "cerfix.proc.uptime_seconds",
        lambda: round(time.monotonic() - _PROC_START, 3),
    )


# -- scraping ----------------------------------------------------------------


def _get_json(url: str, path: str, timeout: float) -> dict:
    """One unretried ``GET`` returning parsed JSON, or :class:`ScrapeError`."""
    from repro.master.remote import _split_url

    try:
        host, port = _split_url(url)
    except Exception as exc:
        raise ScrapeError(f"bad endpoint url {url!r}: {exc}") from None
    conn = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        conn.request("GET", path)
        response = conn.getresponse()
        data = response.read()
        if response.status != 200:
            raise ScrapeError(f"{url}{path} answered {response.status}")
        return json.loads(data)
    except ScrapeError:
        raise
    except Exception as exc:
        raise ScrapeError(f"{url}{path}: {type(exc).__name__}: {exc}") from None
    finally:
        conn.close()


def _hist_counts(hist: Dict[str, Any]) -> list[int]:
    """Reconstruct the raw occupancy array from a dump histogram."""
    counts = [0] * (len(BUCKET_BOUNDS_MS) + 1)
    for key, n in hist.get("buckets", {}).items():
        if key == "+inf":
            counts[-1] = int(n)
            continue
        try:
            bound = float(key[2:])
        except ValueError:
            continue
        for idx, b in enumerate(BUCKET_BOUNDS_MS):
            if b == bound:
                counts[idx] = int(n)
                break
    return counts


class ClusterMonitor:
    """Scrape a whole CerFix fleet into one snapshot with a rollup.

    ``shard_urls`` takes the same topology the remote store accepts —
    flat (one url per shard) or nested (one replica list per shard).
    ``fail_threshold`` consecutive failed scrapes of a replica open a
    *monitor-side* circuit for it (``source: "monitor"``); client-side
    breakers are additionally merged out of the service's
    ``remote_store`` source (``source: "client"``). A replica whose
    last successful scrape is older than ``stale_after`` seconds is
    reported stale even if the latest round did not probe it.
    """

    def __init__(
        self,
        shard_urls: Sequence[Any],
        *,
        service_url: str | None = None,
        timeout: float = 2.0,
        fail_threshold: int = 2,
        stale_after: float = 10.0,
        history: int = 120,
    ):
        from repro.master.remote import _normalize_topology

        self.topology: Tuple[Tuple[str, ...], ...] = _normalize_topology(shard_urls)
        self.service_url = service_url
        self.timeout = timeout
        self.fail_threshold = max(1, int(fail_threshold))
        self.stale_after = stale_after
        self._failures: Dict[str, int] = {}
        self._last_ok: Dict[str, float] = {}
        self._history: deque[dict[str, Any]] = deque(maxlen=history)

    # -- one scrape round ---------------------------------------------------

    def _scrape_member(self, shard: int, replica: int, url: str, now: float) -> dict:
        member: dict[str, Any] = {
            "shard": shard,
            "replica": replica,
            "url": url,
            "up": False,
            "error": None,
            "healthz": None,
            "metrics": None,
        }
        try:
            member["healthz"] = _get_json(url, "/healthz", self.timeout)
            member["metrics"] = _get_json(url, "/metrics", self.timeout)
            member["up"] = True
            self._failures[url] = 0
            self._last_ok[url] = now
        except ScrapeError as exc:
            member["error"] = str(exc)
            self._failures[url] = self._failures.get(url, 0) + 1
        member["consecutive_failures"] = self._failures.get(url, 0)
        last_ok = self._last_ok.get(url)
        member["staleness_s"] = round(now - last_ok, 3) if last_ok else None
        return member

    def scrape_once(self) -> dict[str, Any]:
        """One scrape round → one ``cerfix.cluster.v1`` snapshot.

        The snapshot is appended to the monitor's own history ring so
        :meth:`rates` can difference consecutive rounds.
        """
        now = time.time()
        members: List[dict] = []
        for shard, group in enumerate(self.topology):
            for replica, url in enumerate(group):
                members.append(self._scrape_member(shard, replica, url, now))
        service: dict[str, Any] | None = None
        if self.service_url:
            service = {"url": self.service_url, "up": False, "error": None, "metrics": None}
            try:
                service["metrics"] = _get_json(self.service_url, "/api/metrics", self.timeout)
                service["up"] = True
            except ScrapeError as exc:
                service["error"] = str(exc)
        snapshot = {
            "schema": "cerfix.cluster.v1",
            "ts": now,
            "shards": len(self.topology),
            "members": members,
            "service": service,
            "rollup": self._rollup(members, service, now),
        }
        self._history.append(snapshot)
        return snapshot

    # -- rollup -------------------------------------------------------------

    def _client_circuits(self, service: dict | None) -> List[dict]:
        """Open client-side breakers from the service's remote_store source."""
        if not service or not service.get("up"):
            return []
        registry = (service.get("metrics") or {}).get("registry") or {}
        store = registry.get("sources", {}).get("remote_store") or {}
        out = []
        for group in store.get("per_shard", []):
            for idx, rep in enumerate(group.get("replicas", [])):
                state = rep.get("circuit", "closed")
                if state != "closed":
                    out.append(
                        {
                            "shard": rep.get("shard_id"),
                            "replica": idx,
                            "url": rep.get("url"),
                            "source": "client",
                            "state": state,
                        }
                    )
        return out

    def _rollup(
        self, members: List[dict], service: dict | None, now: float
    ) -> dict[str, Any]:
        down = [
            {"shard": m["shard"], "replica": m["replica"], "url": m["url"], "error": m["error"]}
            for m in members
            if not m["up"]
        ]
        open_circuits = [
            {
                "shard": m["shard"],
                "replica": m["replica"],
                "url": m["url"],
                "source": "monitor",
                "state": "open",
            }
            for m in members
            if m["consecutive_failures"] >= self.fail_threshold
        ]
        open_circuits.extend(self._client_circuits(service))
        shards_down = []
        digests: Dict[str, List[str | None]] = {}
        digest_agreement = True
        for shard in range(len(self.topology)):
            group = [m for m in members if m["shard"] == shard]
            up = [m for m in group if m["up"]]
            if not up:
                shards_down.append(shard)
            seen = [
                (m["healthz"] or {}).get("digest") if m["up"] else None for m in group
            ]
            digests[str(shard)] = seen
            live = {d for d in seen if d is not None}
            if len(live) > 1:
                digest_agreement = False
        stale = [
            m["url"]
            for m in members
            if m["staleness_s"] is not None and m["staleness_s"] > self.stale_after
        ]
        service_ok = service is None or service.get("up", False)
        if shards_down:
            status = "down"
        elif down or open_circuits or not digest_agreement or stale or not service_ok:
            status = "degraded"
        else:
            status = "ok"
        return {
            "status": status,
            "replicas_total": len(members),
            "replicas_up": len(members) - len(down),
            "shards_down": shards_down,
            "down": down,
            "open_circuits": open_circuits,
            "digest_agreement": digest_agreement,
            "digests": digests,
            "stale": stale,
            "service": (
                None
                if service is None
                else {"url": service["url"], "up": service["up"], "error": service["error"]}
            ),
        }

    # -- rates over time ----------------------------------------------------

    def history(self) -> list[dict[str, Any]]:
        return list(self._history)

    @staticmethod
    def _fleet_counters(snapshot: dict) -> Dict[str, float]:
        """Sum registry counters across every up member + the service."""
        totals: Dict[str, float] = {}
        dumps = [m["metrics"] for m in snapshot["members"] if m["up"] and m["metrics"]]
        service = snapshot.get("service")
        if service and service.get("up"):
            dumps.append((service.get("metrics") or {}).get("registry") or {})
        for dump in dumps:
            for name, value in (dump.get("counters") or {}).items():
                totals[name] = totals.get(name, 0) + value
        return totals

    @staticmethod
    def _shard_hist(snapshot: dict, name: str) -> Dict[int, tuple[list[int], int, float, float]]:
        """Per-shard (counts, count, total, max) for one histogram name."""
        out: Dict[int, tuple[list[int], int, float, float]] = {}
        for m in snapshot["members"]:
            if not (m["up"] and m["metrics"]):
                continue
            hist = (m["metrics"].get("histograms") or {}).get(name)
            if not hist:
                continue
            counts = _hist_counts(hist)
            count = int(hist.get("count", 0))
            total_ms = float(hist.get("mean_ms", 0.0)) * count
            max_ms = float(hist.get("max_ms", 0.0))
            prev = out.get(m["shard"])
            if prev is None:
                out[m["shard"]] = (counts, count, total_ms, max_ms)
            else:
                merged = [a + b for a, b in zip(prev[0], counts)]
                out[m["shard"]] = (
                    merged,
                    prev[1] + count,
                    prev[2] + total_ms,
                    max(prev[3], max_ms),
                )
        return out

    def rates(self, window_s: float | None = None) -> dict[str, Any]:
        """Fleet-wide delta rates between the two ends of the window.

        ``{"window_s", "counters_per_s", "probes_per_s",
        "requests_per_s", "errors_per_s", "failovers_per_min",
        "per_shard": {shard: {count_per_s, p50_ms, p95_ms, p99_ms}}}``
        — all derived by differencing scraped snapshots, so a freshly
        started monitor answers zeros until its second scrape.
        """
        snaps = self.history()
        empty = {
            "window_s": 0.0,
            "counters_per_s": {},
            "probes_per_s": 0.0,
            "requests_per_s": 0.0,
            "errors_per_s": 0.0,
            "failovers_per_min": 0.0,
            "per_shard": {},
        }
        if len(snaps) < 2:
            return empty
        new = snaps[-1]
        old = snaps[0]
        if window_s is not None:
            cutoff = new["ts"] - window_s
            for snap in snaps[:-1]:
                if snap["ts"] >= cutoff:
                    old = snap
                    break
        dt = new["ts"] - old["ts"]
        if dt <= 0:
            return empty
        new_totals = self._fleet_counters(new)
        old_totals = self._fleet_counters(old)
        per_s = {
            name: round((value - old_totals.get(name, 0)) / dt, 4)
            for name, value in new_totals.items()
        }
        per_shard: dict[str, Any] = {}
        new_h = self._shard_hist(new, "cerfix.shard.request_seconds")
        old_h = self._shard_hist(old, "cerfix.shard.request_seconds")
        for shard, (counts, count, total_ms, max_ms) in sorted(new_h.items()):
            o_counts, o_count, _o_total, _o_max = old_h.get(
                shard, ([0] * len(counts), 0, 0.0, 0.0)
            )
            d_counts = [a - b for a, b in zip(counts, o_counts)]
            d_count = count - o_count
            per_shard[str(shard)] = {
                "count_per_s": round(d_count / dt, 4),
                "p50_ms": round(bucket_percentile(d_counts, d_count, max_ms, 0.50), 4),
                "p95_ms": round(bucket_percentile(d_counts, d_count, max_ms, 0.95), 4),
                "p99_ms": round(bucket_percentile(d_counts, d_count, max_ms, 0.99), 4),
            }
        return {
            "window_s": round(dt, 3),
            "counters_per_s": per_s,
            "probes_per_s": per_s.get("cerfix.shard.probes", 0.0),
            "requests_per_s": per_s.get("cerfix.shard.requests", 0.0),
            "errors_per_s": per_s.get("cerfix.shard.misroutes", 0.0),
            "failovers_per_min": round(per_s.get("cerfix.remote.failovers", 0.0) * 60, 4),
            "per_shard": per_shard,
        }


# -- rendering ---------------------------------------------------------------


def describe_rollup(rollup: dict[str, Any]) -> list[str]:
    """Human report lines for ``cerfix health`` — one finding per line."""
    lines = [
        "cluster status: {status} ({up}/{total} replicas up)".format(
            status=rollup["status"],
            up=rollup["replicas_up"],
            total=rollup["replicas_total"],
        )
    ]
    for member in rollup["down"]:
        lines.append(
            "DOWN  shard {shard} replica {replica} at {url}: {error}".format(**member)
        )
    for shard in rollup["shards_down"]:
        lines.append(f"SHARD DOWN  shard {shard} has no healthy replica")
    for circuit in rollup["open_circuits"]:
        lines.append(
            "CIRCUIT {state}  shard {shard} replica {replica} at {url} "
            "(seen by {source})".format(**circuit)
        )
    if not rollup["digest_agreement"]:
        lines.append(f"DIGEST MISMATCH  per-shard digests: {rollup['digests']}")
    for url in rollup["stale"]:
        lines.append(f"STALE  {url} last answered too long ago")
    service = rollup.get("service")
    if service is not None and not service["up"]:
        lines.append(
            "SERVICE DOWN  {url}: {error}".format(
                url=service["url"], error=service["error"]
            )
        )
    return lines


def _fmt(value: float, width: int = 8) -> str:
    return f"{value:>{width}.1f}"


def render_top(snapshot: dict[str, Any], rates: dict[str, Any]) -> str:
    """The ``cerfix top`` dashboard: one plain-text frame, no curses."""
    rollup = snapshot["rollup"]
    lines = [
        "cerfix top — {shards} shard(s), {total} replica(s) — status: {status}".format(
            shards=snapshot["shards"],
            total=rollup["replicas_total"],
            status=rollup["status"].upper(),
        ),
        (
            "window {w}s   requests/s {req}   probes/s {pr}   "
            "errors/s {err}   failovers/min {fo}".format(
                w=rates["window_s"],
                req=rates["requests_per_s"],
                pr=rates["probes_per_s"],
                err=rates["errors_per_s"],
                fo=rates["failovers_per_min"],
            )
        ),
        "",
        f"{'shard':>5} {'rep':>3} {'url':<28} {'up':<4} {'circ':<6} "
        f"{'req/s':>8} {'p50ms':>8} {'p95ms':>8} {'p99ms':>8} {'fails':>5}",
    ]
    open_urls = {c["url"]: c["state"] for c in rollup["open_circuits"]}
    for member in snapshot["members"]:
        shard_rates = rates["per_shard"].get(str(member["shard"]), {})
        lines.append(
            "{shard:>5} {rep:>3} {url:<28} {up:<4} {circ:<6} "
            "{rps} {p50} {p95} {p99} {fails:>5}".format(
                shard=member["shard"],
                rep=member["replica"],
                url=member["url"][:28],
                up="yes" if member["up"] else "NO",
                circ=open_urls.get(member["url"], "-"),
                rps=_fmt(shard_rates.get("count_per_s", 0.0)),
                p50=_fmt(shard_rates.get("p50_ms", 0.0)),
                p95=_fmt(shard_rates.get("p95_ms", 0.0)),
                p99=_fmt(shard_rates.get("p99_ms", 0.0)),
                fails=member["consecutive_failures"],
            )
        )
    service = snapshot.get("service")
    if service is not None:
        lines.append("")
        lines.append(
            "service {url}: {state}".format(
                url=service["url"],
                state="up" if service["up"] else f"DOWN ({service['error']})",
            )
        )
    proc_lines = []
    for member in snapshot["members"]:
        if not (member["up"] and member["metrics"]):
            continue
        gauges = member["metrics"].get("gauges") or {}
        rss = gauges.get("cerfix.proc.rss_bytes")
        if rss is None:
            continue
        proc_lines.append(
            "  shard {shard} rep {rep}: rss {rss:.1f} MiB, "
            "{fds:.0f} fds, {thr:.0f} threads, up {upt:.0f}s".format(
                shard=member["shard"],
                rep=member["replica"],
                rss=rss / (1024 * 1024),
                fds=gauges.get("cerfix.proc.open_fds", 0.0) or 0.0,
                thr=gauges.get("cerfix.proc.threads", 0.0) or 0.0,
                upt=gauges.get("cerfix.proc.uptime_seconds", 0.0) or 0.0,
            )
        )
    if proc_lines:
        lines.append("")
        lines.append("processes:")
        lines.extend(proc_lines)
    return "\n".join(lines) + "\n"
