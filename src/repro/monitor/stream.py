"""Point-of-entry stream processing.

CerFix "finds certain fixes for input tuples at the point of data entry";
the stream processor models exactly that: a sequence of incoming tuples,
one monitor session each, a (simulated) user per tuple, and a shared
audit log. Its report carries the per-tuple round counts and the
user/auto cell split that Fig. 4 and the 20%/80% claim are about.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

from repro.errors import MonitorError
from repro.audit.log import AuditLog
from repro.core.certainty import CertaintyMode, Scenario
from repro.core.region import RankedRegion
from repro.core.ruleset import RuleSet
from repro.master.manager import MasterDataManager
from repro.monitor.session import MonitorSession
from repro.monitor.suggest import SuggestionStrategy
from repro.monitor.user import OracleUser, User
from repro.relational.relation import Relation


@dataclass(frozen=True)
class TupleOutcome:
    """One tuple's journey through the monitor."""

    tuple_id: str
    complete: bool
    rounds: int
    user_cells: int
    rule_cells: int
    changed_cells: int
    conflicts: int

    @property
    def total_validated(self) -> int:
        return self.user_cells + self.rule_cells


@dataclass
class StreamReport:
    """Aggregate outcome of a monitoring stream."""

    outcomes: list[TupleOutcome] = field(default_factory=list)
    elapsed_seconds: float = 0.0

    @property
    def tuples(self) -> int:
        return len(self.outcomes)

    @property
    def completed(self) -> int:
        return sum(1 for o in self.outcomes if o.complete)

    @property
    def user_cells(self) -> int:
        return sum(o.user_cells for o in self.outcomes)

    @property
    def rule_cells(self) -> int:
        return sum(o.rule_cells for o in self.outcomes)

    @property
    def user_share(self) -> float:
        """Fraction of validated cells the *user* provided (paper: ~20%)."""
        total = self.user_cells + self.rule_cells
        return self.user_cells / total if total else 0.0

    @property
    def auto_share(self) -> float:
        """Fraction of validated cells CerFix fixed itself (paper: ~80%)."""
        total = self.user_cells + self.rule_cells
        return self.rule_cells / total if total else 0.0

    @property
    def mean_rounds(self) -> float:
        done = [o.rounds for o in self.outcomes if o.complete]
        return sum(done) / len(done) if done else 0.0

    @property
    def throughput(self) -> float:
        """Tuples per second."""
        return self.tuples / self.elapsed_seconds if self.elapsed_seconds else 0.0


class _SuggestionMemo:
    """A bounded get/put memo shared by one stream's sessions.

    Point-of-entry traffic is duplicate-heavy (the same population
    re-enters transactions), and a suggestion is a deterministic
    function of the validated (attr, value) pairs plus the engine
    configuration — which is constant across one stream run, so the
    memo-key hygiene the session API requires holds by construction
    (same ruleset, master, regions, scenario for every session).
    """

    __slots__ = ("_store", "_maxsize")

    def __init__(self, maxsize: int = 65536):
        self._store: dict = {}
        self._maxsize = maxsize

    def get(self, key, default=None):
        return self._store.get(key, default)

    def put(self, key, value) -> None:
        if len(self._store) >= self._maxsize:
            self._store.clear()
        self._store[key] = value


class StreamProcessor:
    """Run monitor sessions over a relation of incoming dirty tuples."""

    def __init__(
        self,
        ruleset: RuleSet,
        master: MasterDataManager,
        *,
        regions: Sequence[RankedRegion] = (),
        strategy: SuggestionStrategy = SuggestionStrategy.CORE_FIRST,
        mode: CertaintyMode = CertaintyMode.STRICT,
        scenario: Scenario | None = None,
        audit: AuditLog | None = None,
        use_index: bool = True,
        max_rounds: int | None = None,
    ):
        self.ruleset = ruleset
        self.master = master
        self.regions = tuple(regions)
        self.strategy = strategy
        self.mode = mode
        self.scenario = scenario
        self.audit = audit if audit is not None else AuditLog()
        self.use_index = use_index
        self.max_rounds = max_rounds

    def process(
        self,
        dirty: Relation,
        truth: Relation | None = None,
        *,
        user_factory: Callable[[str, Mapping[str, Any] | None], User] | None = None,
        tuple_ids: Sequence[str] | None = None,
    ) -> StreamReport:
        """Monitor every tuple of ``dirty``.

        By default each tuple gets an :class:`OracleUser` backed by the
        corresponding ``truth`` row (required then); pass ``user_factory``
        for other user models. Sessions that stall (user out of answers)
        are recorded as incomplete, not raised.
        """
        if user_factory is None:
            if truth is None:
                raise MonitorError("process() needs either truth rows or a user_factory")
            user_factory = lambda tid, t: OracleUser(t)  # noqa: E731
        if truth is not None and len(truth) != len(dirty):
            raise MonitorError(
                f"truth has {len(truth)} rows but the dirty stream has {len(dirty)}"
            )
        report = StreamReport()
        memo = _SuggestionMemo()
        start = time.perf_counter()
        for i, row in enumerate(dirty.rows()):
            tid = tuple_ids[i] if tuple_ids is not None else f"t{i}"
            truth_values = truth.row(i).to_dict() if truth is not None else None
            session = MonitorSession(
                self.ruleset,
                self.master,
                row.to_dict(),
                tid,
                regions=self.regions,
                strategy=self.strategy,
                mode=self.mode,
                scenario=self.scenario,
                audit=self.audit,
                use_index=self.use_index,
                suggestion_memo=memo,
            )
            user = user_factory(tid, truth_values)
            session.run(user, max_rounds=self.max_rounds)
            provenance = session.provenance
            changed = sum(1 for e in self.audit.by_tuple(tid) if e.changed)
            report.outcomes.append(
                TupleOutcome(
                    tuple_id=tid,
                    complete=session.is_complete,
                    rounds=session.round_no,
                    user_cells=sum(1 for s in provenance.values() if s == "user"),
                    rule_cells=sum(1 for s in provenance.values() if s == "rule"),
                    changed_cells=changed,
                    conflicts=len(session.conflicts),
                )
            )
        report.elapsed_seconds = time.perf_counter() - start
        return report
