"""Simulated users for the data monitor.

The demo interacts with booth visitors; the reproduction interacts with
*user models*. Each model answers one question — given a suggestion and
the session state, which attributes does the user validate, with which
values? The models consult a ground-truth tuple (our stand-in for the
human who knows the real entity), which is exactly what lets the
benchmarks measure the paper's user/auto split and the headline
"no new errors" guarantee.
"""

from __future__ import annotations

import random
from typing import Any, Mapping

from repro.errors import ValidationError
from repro.monitor.session import MonitorSession
from repro.monitor.suggest import Suggestion


class User:
    """Base class: a participant who can validate attributes."""

    def respond(self, suggestion: Suggestion, session: MonitorSession) -> Mapping[str, Any]:
        """Attributes -> correct values the user validates this round.

        Returning an empty mapping means "nothing more to offer"; the
        session loop stops (the tuple stays without a certain fix).
        """
        raise NotImplementedError


class OracleUser(User):
    """Knows the ground truth; validates exactly what is suggested."""

    def __init__(self, truth: Mapping[str, Any]):
        self.truth = dict(truth)

    def respond(self, suggestion: Suggestion, session: MonitorSession) -> Mapping[str, Any]:
        return {a: self.truth[a] for a in suggestion.attrs if a in self.truth}


class CautiousUser(User):
    """Validates at most ``max_per_round`` suggested attributes per round —
    stretches sessions over more rounds, exercising re-suggestion."""

    def __init__(self, truth: Mapping[str, Any], max_per_round: int = 1):
        if max_per_round < 1:
            raise ValidationError("max_per_round must be >= 1")
        self.truth = dict(truth)
        self.max_per_round = max_per_round

    def respond(self, suggestion: Suggestion, session: MonitorSession) -> Mapping[str, Any]:
        picked = [a for a in suggestion.attrs if a in self.truth][: self.max_per_round]
        return {a: self.truth[a] for a in picked}


class SelectiveUser(User):
    """Only knows some attributes (paper step (2): "the users may respond
    with a set t[S] of attributes … where S may not be any of the certain
    regions"). Ignores suggestions it cannot answer and volunteers a known
    attribute instead."""

    def __init__(self, truth: Mapping[str, Any], known: set[str]):
        self.truth = dict(truth)
        self.known = set(known)

    def respond(self, suggestion: Suggestion, session: MonitorSession) -> Mapping[str, Any]:
        answerable = [a for a in suggestion.attrs if a in self.known]
        if answerable:
            return {a: self.truth[a] for a in answerable}
        fallback = [
            a for a in session.schema.names
            if a in self.known and a not in session.validated
        ]
        if fallback:
            return {fallback[0]: self.truth[fallback[0]]}
        return {}


class ScriptedUser(User):
    """Replays a fixed script of validations — deterministic walkthroughs
    such as the Fig. 3 demonstration."""

    def __init__(self, script: list[Mapping[str, Any]]):
        self.script = [dict(step) for step in script]
        self._cursor = 0

    def respond(self, suggestion: Suggestion, session: MonitorSession) -> Mapping[str, Any]:
        if self._cursor >= len(self.script):
            return {}
        step = self.script[self._cursor]
        self._cursor += 1
        return step


class NoisyOracleUser(User):
    """An oracle that is wrong with probability ``error_rate`` per cell.

    Violates the certain-fix contract on purpose — used by negative tests
    and diagnostics benches to show that conflicts are *detected* (the
    chase reports a witness) rather than silently propagated.
    """

    def __init__(
        self,
        truth: Mapping[str, Any],
        error_rate: float,
        rng: random.Random | None = None,
    ):
        if not 0.0 <= error_rate <= 1.0:
            raise ValidationError(f"error_rate must be in [0, 1], got {error_rate}")
        self.truth = dict(truth)
        self.error_rate = error_rate
        self.rng = rng if rng is not None else random.Random(0)

    def respond(self, suggestion: Suggestion, session: MonitorSession) -> Mapping[str, Any]:
        out = {}
        for attr in suggestion.attrs:
            if attr not in self.truth:
                continue
            value = self.truth[attr]
            if self.rng.random() < self.error_rate:
                value = f"{value}!wrong"
            out[attr] = value
        return out
