"""Suggestion computation (paper §2, Data monitor steps (1) and (3)).

"If not all attributes of t have been validated, data monitor computes a
new suggestion, i.e., a minimal number of attributes, which are
recommended to the users."

Three strategies, benchmarked against each other in E2:

``CORE_FIRST`` (default — reproduces the Fig. 3 interaction)
    Round one suggests the *mandatory* attributes (those no rule can fix
    — {AC, phn, type, item} for the paper's rules, exactly Fig. 3(a));
    later rounds suggest a minimal set whose validation lets the
    *optimistic* closure reach every attribute (Fig. 3(b) suggests
    {zip}). Cheap: no value enumeration.

``REGION``
    Pick the best precomputed certain region compatible with the values
    validated so far and suggest its yet-unvalidated attributes — "the
    initial suggestions are computed by region finder … and are
    referenced when computing new suggestions".

``SEMANTIC``
    A minimal set S such that validating S guarantees completion *for
    every possible correct value* of S (exact, using the certainty
    machinery conditioned on the concrete validated values). One round,
    but the most expensive — this is the cost the paper's precomputation
    remark is about.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from repro.core.certainty import CertaintyMode, Scenario, guaranteed_validated
from repro.core.inference import mandatory_attributes, reachable_closure
from repro.core.pattern import Eq, PatternTuple
from repro.core.region import RankedRegion
from repro.core.ruleset import RuleSet
from repro.master.manager import MasterDataManager


class SuggestionStrategy(enum.Enum):
    CORE_FIRST = "core_first"
    REGION = "region"
    SEMANTIC = "semantic"


@dataclass(frozen=True)
class Suggestion:
    """Attributes the monitor asks the user to validate, with rationale."""

    attrs: tuple[str, ...]
    strategy: SuggestionStrategy
    rationale: str
    region: RankedRegion | None = None

    def render(self) -> str:
        return f"validate {{{', '.join(self.attrs)}}} — {self.rationale}"


#: Validation-effort costs: attr -> positive weight. Unlisted attributes
#: cost 1.0. The monitor minimises total cost instead of cardinality —
#: "minimizing human efforts" (paper §4) with non-uniform effort.
Costs = Mapping[str, float]


def _cost(attrs, costs: Costs | None) -> float:
    if not costs:
        return float(len(tuple(attrs)))
    return sum(costs.get(a, 1.0) for a in attrs)


def _subsets_by_cost(free: Sequence[str], costs: Costs | None):
    """All subsets of ``free``, ascending by (total cost, size, attrs)."""
    subsets = []
    for extra in range(len(free) + 1):
        for pick in itertools.combinations(free, extra):
            subsets.append(pick)
    subsets.sort(key=lambda s: (_cost(s, costs), len(s), s))
    return subsets


def _minimal_optimistic_set(
    values: Mapping[str, Any],
    validated: frozenset[str],
    ruleset: RuleSet,
    costs: Costs | None = None,
) -> tuple[str, ...]:
    """Cheapest S ⊆ unvalidated with optimistic closure covering the schema.

    The optimistic closure treats to-be-validated values as unknown (the
    user may correct them), so pattern conditions on S are assumed
    satisfiable; conditions on already-validated attributes are checked
    against their actual values. Without ``costs`` this is the smallest
    set; with costs, the one of minimal total validation effort.
    S = all unvalidated attributes always works, so the search terminates.
    """
    schema = ruleset.input_schema
    all_attrs = frozenset(schema.names)
    stuck = [a for a in schema.names if a not in validated]
    known = {a: v for a, v in values.items() if a in validated}
    mandatory_stuck = [a for a in stuck if a in mandatory_attributes(ruleset, schema)]
    free = [a for a in stuck if a not in mandatory_stuck]
    # Mandatory unvalidated attributes belong to every working S.
    for pick in _subsets_by_cost(free, costs):
        s = tuple(mandatory_stuck) + pick
        if reachable_closure(known, validated | frozenset(s), ruleset) >= all_attrs:
            return tuple(sorted(s))
    return tuple(sorted(stuck))  # unreachable; kept as a safe fallback


def _region_suggestion(
    values: Mapping[str, Any],
    validated: frozenset[str],
    regions: Sequence[RankedRegion],
    costs: Costs | None = None,
) -> tuple[tuple[str, ...], RankedRegion] | None:
    """The compatible region minimising the cost of new validations."""
    best: tuple[float, tuple, RankedRegion] | None = None
    known = set(validated)
    for ranked in regions:
        region = ranked.region
        diff = tuple(a for a in region.attrs if a not in validated)
        if not diff:
            continue
        if not region.compatible_with(values, known):
            continue
        key = (_cost(diff, costs), ranked.sort_key())
        if best is None or key < (best[0], best[2].sort_key()):
            best = (_cost(diff, costs), diff, ranked)
    if best is None:
        return None
    return best[1], best[2]


def _minimal_semantic_set(
    values: Mapping[str, Any],
    validated: frozenset[str],
    ruleset: RuleSet,
    master: MasterDataManager,
    *,
    mode: CertaintyMode,
    scenario: Scenario | None,
    max_combos: int,
    costs: Costs | None = None,
) -> tuple[str, ...] | None:
    """Cheapest S whose validation *guarantees* completion.

    The certainty test is conditioned on the session's concrete validated
    values by pinning them with an Eq pattern; S (and only S) ranges over
    the mode's value universe.
    """
    schema = ruleset.input_schema
    pin = PatternTuple({a: Eq(values[a]) for a in validated})
    stuck = [a for a in schema.names if a not in validated]
    mandatory_stuck = [a for a in stuck if a in mandatory_attributes(ruleset, schema)]
    free = [a for a in stuck if a not in mandatory_stuck]
    for pick in _subsets_by_cost(free, costs):
        s = tuple(mandatory_stuck) + pick
        attrs = tuple(sorted(validated | frozenset(s)))
        report = guaranteed_validated(
            attrs,
            (pin,),
            ruleset,
            master,
            mode=mode,
            scenario=scenario,
            max_combos=max_combos,
        )
        if report.certain and not report.vacuous:
            return tuple(sorted(s))
    return None


def compute_suggestion(
    values: Mapping[str, Any],
    validated: frozenset[str],
    ruleset: RuleSet,
    master: MasterDataManager,
    *,
    strategy: SuggestionStrategy = SuggestionStrategy.CORE_FIRST,
    regions: Sequence[RankedRegion] = (),
    mode: CertaintyMode = CertaintyMode.STRICT,
    scenario: Scenario | None = None,
    max_combos: int = 50_000,
    costs: Costs | None = None,
) -> Suggestion | None:
    """The monitor's next suggestion, or ``None`` when nothing is left.

    ``costs`` weights per-attribute validation effort; suggestions then
    minimise total cost rather than attribute count (mandatory
    attributes are unavoidable either way).
    """
    schema = ruleset.input_schema
    if validated >= frozenset(schema.names):
        return None

    mandatory = mandatory_attributes(ruleset, schema)
    missing_mandatory = tuple(a for a in schema.names if a in mandatory and a not in validated)

    if strategy is SuggestionStrategy.REGION and regions:
        picked = _region_suggestion(values, validated, regions, costs)
        if picked is not None:
            diff, ranked = picked
            return Suggestion(
                attrs=diff,
                strategy=SuggestionStrategy.REGION,
                rationale=f"completes certain region {ranked.region.render()}",
                region=ranked,
            )
        # fall through to CORE_FIRST when no region is compatible

    if strategy is SuggestionStrategy.SEMANTIC:
        s = _minimal_semantic_set(
            values,
            validated,
            ruleset,
            master,
            mode=mode,
            scenario=scenario,
            max_combos=max_combos,
            costs=costs,
        )
        if s is not None:
            return Suggestion(
                attrs=s,
                strategy=SuggestionStrategy.SEMANTIC,
                rationale="validating these guarantees a certain fix for any correct values",
            )
        # fall through when no set certifies under the chosen mode

    if missing_mandatory:
        return Suggestion(
            attrs=missing_mandatory,
            strategy=SuggestionStrategy.CORE_FIRST,
            rationale="no editing rule can fix these attributes; they must be validated",
        )
    s = _minimal_optimistic_set(values, validated, ruleset, costs)
    return Suggestion(
        attrs=s,
        strategy=SuggestionStrategy.CORE_FIRST,
        rationale="minimal set whose validation lets the rules reach every attribute",
    )
