"""Monitor sessions: the per-tuple interaction state machine of Fig. 3.

A session holds one input tuple's working copy, the set of validated
attributes and the round history. Each round: the monitor offers a
:class:`~repro.monitor.suggest.Suggestion`; the user validates some
attributes (the suggested ones or others — step (2) of the paper allows
both); the session chases editing rules against master data, expanding
the validated set; repeat until a certain fix is reached.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Iterable, Mapping, Sequence

from repro.errors import MonitorError
from repro.audit.log import AuditLog
from repro.core.certainty import CertaintyMode, Scenario
from repro.core.chase import ChaseResult, ConflictWitness, FixStep, chase, chase_memoized
from repro.core.region import RankedRegion
from repro.core.ruleset import RuleSet
from repro.master.manager import MasterDataManager
from repro.monitor.suggest import Suggestion, SuggestionStrategy, compute_suggestion
from repro.obs import trace as tracing
from repro.obs.metrics import get_registry

#: Chase latency in the process-wide registry: fixed-bucket observe, so
#: the hot path pays two clock reads and one short lock per chase.
_CHASE_SECONDS = get_registry().histogram("cerfix.chase.seconds")


@dataclass(frozen=True)
class RoundRecord:
    """What happened in one interaction round."""

    round_no: int
    suggestion: Suggestion | None
    user_assignments: tuple[tuple[str, Any], ...]
    steps: tuple[FixStep, ...]
    newly_validated: tuple[str, ...]
    conflicts: tuple[ConflictWitness, ...]


class MonitorSession:
    """Interactive certain fixing of one input tuple.

    >>> # session = MonitorSession(ruleset, master, tuple_values, "t1")
    >>> # while not session.is_complete:
    >>> #     s = session.suggestion()
    >>> #     session.validate({a: true_value(a) for a in s.attrs})
    >>> # fixed = session.current_values()

    ``strict=True`` raises on the first conflict; otherwise conflicts are
    recorded on the round and surfaced via :attr:`conflicts`.
    """

    def __init__(
        self,
        ruleset: RuleSet,
        master: MasterDataManager,
        values: Mapping[str, Any],
        tuple_id: str = "t",
        *,
        regions: Sequence[RankedRegion] = (),
        strategy: SuggestionStrategy = SuggestionStrategy.CORE_FIRST,
        mode: CertaintyMode = CertaintyMode.STRICT,
        scenario: Scenario | None = None,
        audit: AuditLog | None = None,
        strict: bool = False,
        use_index: bool = True,
        max_combos: int = 50_000,
        costs: Mapping[str, float] | None = None,
        suggestion_memo: Any = None,
        chase_memo: Any = None,
        trace: bool = True,
    ):
        schema = ruleset.input_schema
        missing = [n for n in schema.names if n not in values]
        if missing:
            raise MonitorError(f"tuple {tuple_id!r} is missing attributes {missing}")
        self.ruleset = ruleset
        self.master = master
        self.tuple_id = tuple_id
        self.regions = tuple(regions)
        self.strategy = strategy
        self.mode = mode
        self.scenario = scenario
        self.audit = audit if audit is not None else AuditLog()
        self.strict = strict
        self.use_index = use_index
        self.max_combos = max_combos
        self.costs = dict(costs) if costs else None
        #: Optional cross-session suggestion memo (``get``/``put``). A
        #: suggestion is a deterministic function of the validated
        #: (attr, value) pairs plus the engine configuration, so
        #: sessions over duplicate-heavy traffic can share inference
        #: work. The caller owns key-space hygiene for everything not
        #: in the key (regions, scenario, master content) — see
        #: :class:`repro.service.cache.MemoView`. Disabled when
        #: per-attribute ``costs`` are in play.
        self._suggestion_memo = suggestion_memo if costs is None else None
        #: Optional cross-session chase memo (see
        #: :func:`repro.core.chase.chase_memoized`): transcripts are
        #: shared across sessions whose validated (attr, value) states
        #: coincide. Same hygiene contract as the suggestion memo; not
        #: sound under strict mode (a strict chase aborts mid-sweep).
        self._chase_memo = chase_memo if not strict else None

        self._state: dict[str, Any] = {n: values[n] for n in schema.names}
        self._all_attrs: frozenset[str] = frozenset(schema.names)
        self._validated: frozenset[str] = frozenset()
        self._provenance: dict[str, str] = {}  # attr -> "user" | "rule"
        self.rounds: list[RoundRecord] = []
        self._round_count = 0  # rounds with round_no > 0, i.e. len minus the entry round
        self._suggestion_cache: tuple[frozenset[str], Suggestion | None] | None = None
        #: Per-session span gate: the batch executor opens one
        #: group-chase span per group and passes ``trace=False`` here,
        #: so a 5k-row run exports thousands of spans, not millions.
        self._trace = trace

        # Round 0: rules applicable with nothing validated (constant rules
        # with empty patterns) fire immediately on entry.
        with tracing.span("session-open", tuple=tuple_id) if trace else tracing.NOOP:
            self._run_chase(round_no=0, suggestion=None, assignments={})

    # -- state views -------------------------------------------------------

    @property
    def schema(self):
        return self.ruleset.input_schema

    @property
    def validated(self) -> frozenset[str]:
        return self._validated

    @property
    def provenance(self) -> dict[str, str]:
        """attr -> "user" | "rule" for every validated attribute."""
        return dict(self._provenance)

    @property
    def is_complete(self) -> bool:
        """True iff every attribute is validated — a certain fix."""
        return self._validated >= self._all_attrs

    @property
    def round_no(self) -> int:
        return self._round_count

    @property
    def conflicts(self) -> tuple[ConflictWitness, ...]:
        return tuple(c for r in self.rounds for c in r.conflicts)

    def current_values(self) -> dict[str, Any]:
        """The working copy (certain fix once :attr:`is_complete`)."""
        return dict(self._state)

    def fixed_values(self) -> dict[str, Any]:
        """The certain fix; raises unless the session is complete."""
        if not self.is_complete:
            raise MonitorError(
                f"tuple {self.tuple_id!r}: no certain fix yet — "
                f"unvalidated attributes {sorted(frozenset(self.schema.names) - self._validated)}"
            )
        return dict(self._state)

    # -- the interaction loop ----------------------------------------------

    def suggestion(self) -> Suggestion | None:
        """Step (1)/(3): what the monitor recommends validating next."""
        if self.is_complete:
            return None
        if self._suggestion_cache is not None and self._suggestion_cache[0] == self._validated:
            return self._suggestion_cache[1]
        memo_key = self._memo_key()
        if memo_key is not None:
            memoised = self._suggestion_memo.get(memo_key)
            if memoised is not None:
                self._suggestion_cache = (self._validated, memoised)
                return memoised
        with tracing.span("suggest", tuple=self.tuple_id) if self._trace else tracing.NOOP:
            suggestion = compute_suggestion(
                self._state,
                self._validated,
                self.ruleset,
                self.master,
                strategy=self.strategy,
                regions=self.regions,
                mode=self.mode,
                scenario=self.scenario,
                max_combos=self.max_combos,
                costs=self.costs,
            )
        self._suggestion_cache = (self._validated, suggestion)
        if memo_key is not None and suggestion is not None:
            self._suggestion_memo.put(memo_key, suggestion)
        return suggestion

    def _memo_key(self) -> tuple | None:
        """The cross-session memo key, or None when memoisation is off.

        Suggestions read only *validated* values (unvalidated cells are
        treated as unknown by every strategy), so the key is the sorted
        validated (attr, value) pairs plus strategy and mode. Unhashable
        values opt the session out rather than raising.
        """
        if self._suggestion_memo is None:
            return None
        try:
            items = tuple(sorted((a, self._state[a]) for a in self._validated))
            hash(items)
        except TypeError:
            return None
        return (items, self.strategy.value, self.mode.value)

    def validate(self, assignments: Mapping[str, Any]) -> RoundRecord:
        """The user validates attributes, supplying their correct values.

        Values may equal the current (confirmation) or differ (the user
        corrects the cell). Re-validating an already-validated attribute
        with a *different* value is rejected: it would contradict an
        earlier certain fix.
        """
        with tracing.span("interaction", tuple=self.tuple_id) if self._trace else tracing.NOOP:
            return self._validate(assignments)

    def _validate(self, assignments: Mapping[str, Any]) -> RoundRecord:
        if self.is_complete:
            raise MonitorError(f"tuple {self.tuple_id!r} already has a certain fix")
        if not assignments:
            raise MonitorError("validate() needs at least one attribute")
        suggestion = self.suggestion()
        for attr in assignments:
            if attr not in self.schema:
                raise MonitorError(f"unknown attribute {attr!r}")
            if attr in self._validated and assignments[attr] != self._state[attr]:
                raise MonitorError(
                    f"attribute {attr!r} was already validated as {self._state[attr]!r}; "
                    f"refusing the contradictory value {assignments[attr]!r}"
                )
        round_no = self.round_no + 1
        user_items = []
        for attr, value in assignments.items():
            if attr in self._validated:
                continue
            old = self._state[attr]
            self._state[attr] = value
            self._validated |= {attr}
            self._provenance[attr] = "user"
            self.audit.record(
                self.tuple_id, attr, old, value, "user", round_no=round_no
            )
            user_items.append((attr, value))
        record = self._run_chase(
            round_no=round_no, suggestion=suggestion, assignments=dict(user_items)
        )
        return record

    def assure(self, attrs: Iterable[str]) -> RoundRecord:
        """Validate the *current* values of ``attrs`` (they are correct)."""
        return self.validate({a: self._state[a] for a in attrs})

    def run(self, user: "UserLike", max_rounds: int | None = None) -> bool:
        """Drive the loop with a user model; True iff a certain fix was
        reached. Stops early when the user has nothing more to offer."""
        limit = max_rounds if max_rounds is not None else len(self.schema) + 1
        while not self.is_complete and self.round_no < limit:
            suggestion = self.suggestion()
            if suggestion is None:
                break
            assignments = user.respond(suggestion, self)
            if not assignments:
                break
            self.validate(assignments)
        return self.is_complete

    # -- internals -----------------------------------------------------------

    def _run_chase(
        self,
        round_no: int,
        suggestion: Suggestion | None,
        assignments: Mapping[str, Any],
    ) -> RoundRecord:
        before = self._validated
        started = time.perf_counter()
        if self._chase_memo is not None:
            result: ChaseResult = chase_memoized(
                self._state,
                self._validated,
                self.ruleset,
                self.master,
                self._chase_memo,
                use_index=self.use_index,
            )
        else:
            result = chase(
                self._state,
                self._validated,
                self.ruleset,
                self.master,
                strict=self.strict,
                use_index=self.use_index,
            )
        _CHASE_SECONDS.observe(time.perf_counter() - started)
        self._state = result.values
        self._validated = result.validated
        for step in result.steps:
            self.audit.record(
                self.tuple_id,
                step.attr,
                step.old,
                step.new,
                "normalize" if step.normalized else "rule",
                rule_id=step.rule_id,
                master_positions=step.master_positions,
                round_no=round_no,
            )
        for attr in result.validated - before - frozenset(assignments):
            self._provenance.setdefault(attr, "rule")
        record = RoundRecord(
            round_no=round_no,
            suggestion=suggestion,
            user_assignments=tuple(assignments.items()),
            steps=result.steps,
            newly_validated=tuple(sorted(result.validated - before)),
            conflicts=result.conflicts,
        )
        if round_no > 0 or record.steps or record.conflicts:
            self.rounds.append(record)
            if round_no > 0:
                self._round_count += 1
        return record


# Typing helper for session.run(); any object with .respond(suggestion,
# session) -> Mapping works (see repro.monitor.user).
class UserLike:
    def respond(self, suggestion: Suggestion, session: MonitorSession) -> Mapping[str, Any]:
        raise NotImplementedError
