"""The data monitor (paper Fig. 1/3): interactive certain fixing of input
tuples at the point of data entry."""

from repro.monitor.suggest import Suggestion, SuggestionStrategy, compute_suggestion
from repro.monitor.session import MonitorSession, RoundRecord
from repro.monitor.user import (
    CautiousUser,
    NoisyOracleUser,
    OracleUser,
    ScriptedUser,
    SelectiveUser,
    User,
)
from repro.monitor.stream import StreamProcessor, StreamReport, TupleOutcome

__all__ = [
    "Suggestion",
    "SuggestionStrategy",
    "compute_suggestion",
    "MonitorSession",
    "RoundRecord",
    "User",
    "OracleUser",
    "CautiousUser",
    "SelectiveUser",
    "ScriptedUser",
    "NoisyOracleUser",
    "StreamProcessor",
    "StreamReport",
    "TupleOutcome",
]
