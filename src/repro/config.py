"""Instance configuration — the demo's "Initialization" step.

"The users are required to configure an instance, which consists of two
parts: (a) a data connection … and (b) specifying the schema of input
(dirty) tuples and that of the master data." (paper §3)

Our data connection is the filesystem: an instance is a JSON document
naming both schemas, the master-data CSV, the rules file (textual
syntax of :mod:`repro.rules.parser`) and the engine options. Loading an
instance yields a ready :class:`~repro.engine.CerFix`; saving one writes
the document plus the referenced artefacts, so a configured system is a
directory you can ship.

Example document::

    {
      "name": "uk-customers",
      "input_schema":  {"name": "customer", "attributes": [
          {"name": "FN"}, {"name": "LN"}, ...]},
      "master_schema": {"name": "person", "attributes": [...]},
      "master_csv": "master.csv",
      "rules_file": "rules.txt",
      "mode": "strict",
      "strategy": "core_first",
      "precompute_regions": 5,
      "store": {"backend": "sharded", "shards": 8},
      "service": {"max_sessions": 64, "cache_size": 8192}
    }

The optional ``store`` section selects the master store backend (see
:mod:`repro.master.store`):

``{"backend": "single"}``
    the default — one in-memory relation;
``{"backend": "sharded", "shards": N}``
    probe structures hash-partitioned across N shards;
``{"backend": "sqlite", "path": "master.db"}``
    in-memory probing over a SQLite-persisted snapshot (``path``
    resolves against the instance directory; the snapshot is written or
    refreshed from ``master_csv`` on load);
``{"backend": "remote", "urls": ["http://shard0:8401", ...]}``
    probes answered by shard-server processes over HTTP (one entry per
    shard, in shard-id order — see :mod:`repro.master.remote`). An
    entry may also be a *list* of replica urls
    (``"urls": [["http://s0a:8401", "http://s0b:8501"], ...]``): every
    replica serves the same shard and the client rotates reads across
    them, failing over when one dies. The instance's ``master_csv``
    stays the authority on *content*: its digest is verified against
    what the cluster (every replica included) serves, so an instance
    can never silently clean against the wrong master version.

Every backend produces bit-identical fixes — the choice only affects
scale and durability.

The optional ``service`` section configures the async entry service
(``cerfix serve --async`` — see :mod:`repro.service`); its keys mirror
:class:`~repro.service.app.AsyncCerFixService`'s constructor and only
affect capacity and backpressure, never fixes.

The optional ``dirty`` section points at the DB-native dirty relation
(``cerfix clean --db``/``cerfix undo`` — see :mod:`repro.dirty`)::

    "dirty": {"db": "dirty.db", "table": "dirty", "page_rows": 4096}

``db`` resolves against the instance directory; ``table`` defaults to
``"dirty"``; ``page_rows`` bounds per-page memory (overridable by the
``CERFIX_PAGE_ROWS`` environment variable and the ``--page-rows``
flag). Page size never affects fixes — the paged path is bit-identical
to the in-memory path — only memory and archive granularity.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.errors import ValidationError
from repro.core.certainty import CertaintyMode
from repro.core.ruleset import RuleSet
from repro.engine import CerFix
from repro.monitor.suggest import SuggestionStrategy
from repro.relational.csvio import read_csv, write_csv
from repro.relational.relation import Relation
from repro.relational.schema import Schema, schema_from_json, schema_to_json
from repro.rules.parser import parse_rules

_schema_to_json = schema_to_json

#: Allowed keys of the instance document's "service" section, with the
#: type each coerces to. Mirrors AsyncCerFixService's constructor.
_SERVICE_KEYS: dict[str, type] = {
    "max_sessions": int,
    "max_inflight": int,
    "max_session_pending": int,
    "cache_size": int,
    "memo_size": int,
    "max_batch": int,
    "workers": int,
    "batch_window_ms": float,
    "dispatch": str,
    "completed_retention": int,
}

_DISPATCH_MODES = ("auto", "executor", "inline")


def _validate_service(section: dict) -> dict[str, Any]:
    out: dict[str, Any] = {}
    for key, raw in section.items():
        kind = _SERVICE_KEYS.get(key)
        if key == "dispatch":
            if raw not in _DISPATCH_MODES:
                raise ValidationError(
                    f"service option 'dispatch' must be one of {_DISPATCH_MODES}, got {raw!r}"
                )
            out[key] = raw
            continue
        if kind is None:
            raise ValidationError(
                f"unknown service option {key!r} "
                f"(expected one of {sorted(_SERVICE_KEYS)})"
            )
        try:
            value = kind(raw)
        except (TypeError, ValueError):
            raise ValidationError(
                f"service option {key!r} must be {kind.__name__}, got {raw!r}"
            ) from None
        if kind is int and value < 1:
            raise ValidationError(f"service option {key!r} must be >= 1, got {value}")
        if kind is float and value < 0:
            raise ValidationError(f"service option {key!r} must be >= 0, got {value}")
        out[key] = value
    return out


def _validate_dirty(section: dict) -> dict[str, Any]:
    out: dict[str, Any] = {}
    for key, raw in section.items():
        if key == "db":
            if not isinstance(raw, str) or not raw:
                raise ValidationError(
                    f"dirty option 'db' must be a non-empty path, got {raw!r}"
                )
            out[key] = raw
        elif key == "table":
            if not isinstance(raw, str) or not raw:
                raise ValidationError(
                    f"dirty option 'table' must be a non-empty name, got {raw!r}"
                )
            out[key] = raw
        elif key == "page_rows":
            try:
                value = int(raw)
            except (TypeError, ValueError):
                raise ValidationError(
                    f"dirty option 'page_rows' must be an integer, got {raw!r}"
                ) from None
            if value < 1:
                raise ValidationError(
                    f"dirty option 'page_rows' must be >= 1, got {value}"
                )
            out[key] = value
        else:
            raise ValidationError(
                f"unknown dirty option {key!r} "
                f"(expected one of ['db', 'page_rows', 'table'])"
            )
    if out and "db" not in out:
        raise ValidationError("dirty section needs a 'db' path")
    return out


def _schema_from_json(obj: dict) -> Schema:
    try:
        return schema_from_json(obj)
    except KeyError as exc:
        raise ValidationError(f"schema document missing key {exc}") from None


@dataclass
class InstanceConfig:
    """A declarative CerFix instance."""

    name: str
    input_schema: Schema
    master_schema: Schema
    master_csv: str = "master.csv"
    rules_file: str = "rules.txt"
    mode: CertaintyMode = CertaintyMode.STRICT
    strategy: SuggestionStrategy = SuggestionStrategy.CORE_FIRST
    precompute_regions: int = 0
    #: Master store selection: {"backend": ..., "shards": ..., "path": ...}.
    store: dict[str, Any] = field(default_factory=dict)
    #: Async entry service options (``cerfix serve --async``); keys mirror
    #: :class:`~repro.service.app.AsyncCerFixService` (see _SERVICE_KEYS).
    service: dict[str, Any] = field(default_factory=dict)
    #: DB-native dirty relation: {"db": ..., "table": ..., "page_rows": ...}.
    dirty: dict[str, Any] = field(default_factory=dict)
    options: dict[str, Any] = field(default_factory=dict)

    # -- (de)serialisation ---------------------------------------------------

    def to_json(self) -> dict:
        return {
            "name": self.name,
            "input_schema": _schema_to_json(self.input_schema),
            "master_schema": _schema_to_json(self.master_schema),
            "master_csv": self.master_csv,
            "rules_file": self.rules_file,
            "mode": self.mode.value,
            "strategy": self.strategy.value,
            "precompute_regions": self.precompute_regions,
            "store": self.store,
            "service": self.service,
            "dirty": self.dirty,
            "options": self.options,
        }

    @classmethod
    def from_json(cls, obj: dict) -> "InstanceConfig":
        for key in ("name", "input_schema", "master_schema"):
            if key not in obj:
                raise ValidationError(f"instance document missing {key!r}")
        try:
            mode = CertaintyMode(obj.get("mode", "strict"))
        except ValueError:
            raise ValidationError(f"unknown certainty mode {obj.get('mode')!r}") from None
        try:
            strategy = SuggestionStrategy(obj.get("strategy", "core_first"))
        except ValueError:
            raise ValidationError(f"unknown strategy {obj.get('strategy')!r}") from None
        store = dict(obj.get("store", {}))
        if store:
            from repro.master.store import STORE_BACKENDS

            backend = store.get("backend", "single")
            if backend not in STORE_BACKENDS:
                raise ValidationError(
                    f"unknown master store backend {backend!r} "
                    f"(expected one of {STORE_BACKENDS})"
                )
            if backend == "sqlite" and not store.get("path"):
                raise ValidationError("store backend 'sqlite' needs a 'path'")
            if backend == "remote":
                urls = store.get("urls")

                def _ok(entry: Any) -> bool:
                    # a slot is one url, or a non-empty replica-url list
                    if isinstance(entry, str):
                        return bool(entry)
                    return (
                        isinstance(entry, list)
                        and bool(entry)
                        and all(isinstance(u, str) and u for u in entry)
                    )

                if not isinstance(urls, list) or not urls or not all(map(_ok, urls)):
                    raise ValidationError(
                        "store backend 'remote' needs a non-empty 'urls' list "
                        "(one entry per shard, in shard-id order — each entry "
                        "a shard-server url, or a list of replica urls)"
                    )
            if "shards" in store:
                try:
                    shards = int(store["shards"])
                except (TypeError, ValueError):
                    raise ValidationError(
                        f"store 'shards' must be an integer, got {store['shards']!r}"
                    ) from None
                if shards < 1:
                    raise ValidationError(f"store 'shards' must be >= 1, got {shards}")
                store["shards"] = shards
        return cls(
            name=obj["name"],
            input_schema=_schema_from_json(obj["input_schema"]),
            master_schema=_schema_from_json(obj["master_schema"]),
            master_csv=obj.get("master_csv", "master.csv"),
            rules_file=obj.get("rules_file", "rules.txt"),
            mode=mode,
            strategy=strategy,
            precompute_regions=int(obj.get("precompute_regions", 0)),
            store=store,
            service=_validate_service(dict(obj.get("service", {}))),
            dirty=_validate_dirty(dict(obj.get("dirty", {}))),
            options=dict(obj.get("options", {})),
        )


def save_instance(
    directory: str | Path,
    config: InstanceConfig,
    master: Relation,
    ruleset: RuleSet,
) -> Path:
    """Write an instance directory: instance.json + master CSV + rules.

    Returns the path of ``instance.json``.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    write_csv(master, directory / config.master_csv)
    rules_text = "\n".join(r.render() for r in ruleset) + "\n"
    (directory / config.rules_file).write_text(rules_text, encoding="utf-8")
    path = directory / "instance.json"
    path.write_text(json.dumps(config.to_json(), indent=2) + "\n", encoding="utf-8")
    return path


def _resolve_instance_document(path: str | Path) -> Path:
    """``path`` may be the ``instance.json`` file or its directory —
    one place encodes that rule, so every loader resolves relative
    artefact paths against the same base."""
    path = Path(path)
    if path.is_dir():
        path = path / "instance.json"
    if not path.exists():
        raise ValidationError(f"no instance document at {path}")
    return path


def load_instance_parts(path: str | Path) -> tuple[InstanceConfig, Relation, RuleSet]:
    """Load an instance document's raw parts without building an engine.

    ``path`` may be the ``instance.json`` file or its directory. Relative
    artefact paths resolve against the document's directory. This is the
    loader shard servers share with :func:`load_instance`: a
    ``cerfix shard-server --instance`` needs the master relation and the
    rule set, but must not pay for (or depend on) engine construction.
    """
    path = _resolve_instance_document(path)
    try:
        obj = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise ValidationError(f"{path}: bad JSON ({exc})") from None
    config = InstanceConfig.from_json(obj)
    if config.mode is CertaintyMode.SCENARIO:
        raise ValidationError(
            "instance documents cannot use certainty mode 'scenario': the "
            "scenario universe is a programmatic generator; configure "
            "'strict' or 'anchored' and pass a scenario in code instead"
        )
    base = path.parent
    master = read_csv(base / config.master_csv, schema=config.master_schema)
    rules_text = (base / config.rules_file).read_text(encoding="utf-8")
    ruleset = RuleSet(parse_rules(rules_text), config.input_schema, config.master_schema)
    return config, master, ruleset


def load_instance(path: str | Path) -> tuple[CerFix, InstanceConfig]:
    """Load an instance document and build the engine it describes."""
    document = _resolve_instance_document(path)
    config, master, ruleset = load_instance_parts(document)
    base = document.parent
    store_cfg = config.store
    if store_cfg:
        from repro.master.store import make_store

        backend = store_cfg.get("backend", "single")
        store_path = store_cfg.get("path")
        master = make_store(
            master,
            backend,
            shards=int(store_cfg.get("shards", 4)),
            # relative snapshot paths live next to the other artefacts
            path=(base / store_path) if store_path else None,
            urls=store_cfg.get("urls"),
        )
    engine = CerFix(
        ruleset,
        master,
        mode=config.mode,
        strategy=config.strategy,
    )
    if config.precompute_regions:
        engine.precompute_regions(k=config.precompute_regions)
    return engine, config
