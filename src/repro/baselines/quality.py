"""Repair quality against ground truth.

The metrics every accuracy experiment reports, for both CerFix output
and the heuristic baseline:

* **precision** — of the cells a method changed, how many ended up
  correct;
* **recall** — of the cells that were actually erroneous, how many are
  now correct;
* **new_errors** — cells that were *correct* in the dirty input and are
  wrong after "repair" (Example 1's city=Edi→Ldn). Certain fixes have
  ``new_errors == 0`` by construction; that invariant is property-tested.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ValidationError
from repro.relational.relation import Relation


@dataclass(frozen=True)
class RepairQuality:
    """Cell-level accounting of one repair run."""

    total_cells: int
    error_cells: int  # cells wrong in the dirty input
    changed_cells: int  # cells the method modified
    correct_changes: int  # modified cells now equal to truth
    wrong_changes: int  # modified cells still (or newly) different from truth
    errors_fixed: int  # erroneous cells now correct
    errors_missed: int  # erroneous cells left wrong
    new_errors: int  # correct cells turned wrong

    @property
    def precision(self) -> float:
        return self.correct_changes / self.changed_cells if self.changed_cells else 1.0

    @property
    def recall(self) -> float:
        return self.errors_fixed / self.error_cells if self.error_cells else 1.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if p + r else 0.0

    def describe(self) -> str:
        return (
            f"precision={self.precision:.3f} recall={self.recall:.3f} "
            f"f1={self.f1:.3f} fixed={self.errors_fixed}/{self.error_cells} "
            f"new_errors={self.new_errors}"
        )


def evaluate_repair(dirty: Relation, repaired: Relation, truth: Relation) -> RepairQuality:
    """Compare a repaired relation cell-by-cell against the ground truth."""
    if not (len(dirty) == len(repaired) == len(truth)):
        raise ValidationError(
            f"relation sizes differ: dirty={len(dirty)}, repaired={len(repaired)}, truth={len(truth)}"
        )
    names = dirty.schema.names
    if repaired.schema.names != names or truth.schema.names != names:
        raise ValidationError("schemas differ between dirty/repaired/truth relations")

    total = len(dirty) * len(names)
    error_cells = changed = correct_changes = wrong_changes = 0
    fixed = missed = new_errors = 0
    for d, r, t in zip(dirty.tuples(), repaired.tuples(), truth.tuples()):
        for dv, rv, tv in zip(d, r, t):
            was_error = dv != tv
            did_change = rv != dv
            is_correct = rv == tv
            if was_error:
                error_cells += 1
                if is_correct:
                    fixed += 1
                else:
                    missed += 1
            elif not is_correct:
                new_errors += 1
            if did_change:
                changed += 1
                if is_correct:
                    correct_changes += 1
                else:
                    wrong_changes += 1
    return RepairQuality(
        total_cells=total,
        error_cells=error_cells,
        changed_cells=changed,
        correct_changes=correct_changes,
        wrong_changes=wrong_changes,
        errors_fixed=fixed,
        errors_missed=missed,
        new_errors=new_errors,
    )
