"""Greedy cost-based CFD repair — the heuristic baseline of Example 1.

"Previous constraint-based methods use heuristics: they do not guarantee
correct fixes in data repairing. Worse still, they may introduce new
errors … all these previous methods may opt to change t[city] to Ldn;
this does not fix the erroneous t[AC] and worse, messes up the correct
attribute t[city]."

This module implements that style of repair, in the spirit of Bohannon et
al. (SIGMOD 2005, [2]) and Cong et al. (VLDB 2007, [4]): detect CFD
violations, then greedily modify the cheapest attribute so the violated
tableau row is satisfied (or no longer applicable), iterating to a
fixpoint. Two strategies:

* ``RHS`` — always repair the right-hand side (set it to the pattern
  constant / the group's majority value). This is the classic move that
  produces Example 1's wrong fix.
* ``MIN_COST`` — change whichever single cell resolves the violation at
  the lowest edit cost (string edit distance), breaking ties towards the
  RHS. Smarter, still heuristic, still uncertain.

The point of the experiment (E4) is not to strawman the baseline — both
strategies genuinely satisfy the constraints afterwards — but to measure
precision/recall and, crucially, *new errors introduced* against the
recorded ground truth, which certain fixes avoid by construction.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any

from repro.core.pattern import Eq
from repro.relational.relation import Relation
from repro.rules.cfd import CFD, find_violations


class RepairStrategy(enum.Enum):
    RHS = "rhs"
    MIN_COST = "min_cost"


@dataclass(frozen=True)
class RepairChange:
    """One cell modification performed by the repair."""

    position: int
    attr: str
    old: Any
    new: Any
    cfd_id: str


def _edit_distance(a: str, b: str) -> int:
    """Plain Levenshtein distance (cost model for MIN_COST)."""
    a, b = str(a), str(b)
    if a == b:
        return 0
    if not a:
        return len(b)
    if not b:
        return len(a)
    prev = list(range(len(b) + 1))
    for i, ca in enumerate(a, start=1):
        cur = [i]
        for j, cb in enumerate(b, start=1):
            cur.append(min(prev[j] + 1, cur[j - 1] + 1, prev[j - 1] + (ca != cb)))
        prev = cur
    return prev[-1]


class GreedyCFDRepair:
    """Repair a relation to satisfy a CFD set, heuristically.

    ``max_passes`` bounds the fixpoint loop (repairing one violation can
    surface another); the repaired relation of a terminating run
    satisfies every constant CFD row and every variable row it touched.
    """

    def __init__(
        self,
        cfds: list[CFD],
        *,
        strategy: RepairStrategy = RepairStrategy.RHS,
        max_passes: int = 5,
    ):
        self.cfds = list(cfds)
        self.strategy = strategy
        self.max_passes = max_passes

    def repair(self, relation: Relation) -> tuple[Relation, list[RepairChange]]:
        """Return (repaired copy, changes). The input is not mutated."""
        work = Relation(relation.schema, relation.tuples())
        changes: list[RepairChange] = []
        for _ in range(self.max_passes):
            dirty = False
            for cfd in self.cfds:
                for violation in find_violations(cfd, work):
                    applied = self._repair_one(work, cfd, violation, changes)
                    dirty = dirty or applied
            if not dirty:
                break
        return work, changes

    # -- internals -----------------------------------------------------------

    def _set(self, relation: Relation, pos: int, attr: str, value, cfd_id: str,
             changes: list[RepairChange]) -> bool:
        old = relation.row(pos)[attr]
        if old == value:
            return False
        relation.update_cell(pos, attr, value)
        changes.append(RepairChange(pos, attr, old, value, cfd_id))
        return True

    def _repair_one(self, relation: Relation, cfd: CFD, violation, changes) -> bool:
        row_spec = cfd.tableau[violation.row_index]
        if row_spec.is_constant:
            assert isinstance(row_spec.rhs, Eq)
            pos = violation.positions[0]
            if self.strategy is RepairStrategy.RHS:
                return self._set(relation, pos, cfd.rhs, row_spec.rhs.value,
                                 cfd.cfd_id, changes)
            # MIN_COST: compare fixing the RHS against breaking the LHS
            # pattern on its cheapest constant condition.
            row = relation.row(pos)
            rhs_cost = _edit_distance(row[cfd.rhs], row_spec.rhs.value)
            best_attr, best_value, best_cost = cfd.rhs, row_spec.rhs.value, rhs_cost
            for attr, cond in row_spec.lhs.items():
                if isinstance(cond, Eq):
                    # break applicability: blank the LHS cell (cost = length)
                    cost = len(str(row[attr])) + 1
                    if cost < best_cost:
                        best_attr, best_value, best_cost = attr, "", cost
            return self._set(relation, pos, best_attr, best_value, cfd.cfd_id, changes)

        # Variable row: make the group agree on the majority RHS value.
        positions = violation.positions
        counts: dict[Any, int] = {}
        for pos in positions:
            v = relation.row(pos)[cfd.rhs]
            counts[v] = counts.get(v, 0) + 1
        majority = max(counts.items(), key=lambda kv: (kv[1], str(kv[0])))[0]
        applied = False
        for pos in positions:
            if relation.row(pos)[cfd.rhs] != majority:
                applied = self._set(relation, pos, cfd.rhs, majority,
                                    cfd.cfd_id, changes) or applied
        return applied
