"""Baselines: the constraint-based heuristic repair the paper argues
against (Example 1), plus repair-quality metrics against ground truth."""

from repro.baselines.cfd_repair import GreedyCFDRepair, RepairChange, RepairStrategy
from repro.baselines.quality import RepairQuality, evaluate_repair

__all__ = [
    "GreedyCFDRepair",
    "RepairChange",
    "RepairStrategy",
    "RepairQuality",
    "evaluate_repair",
]
