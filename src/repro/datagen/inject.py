"""Ground-truth-preserving error injection.

Takes a clean relation and corrupts cells at a configurable rate with
per-attribute noise operators, recording every injected error. The
(dirty, clean, errors) triple is what every accuracy experiment consumes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

from repro.errors import ValidationError
from repro.relational.relation import Relation

Corruptor = Callable[[str, random.Random], str]


@dataclass(frozen=True)
class InjectedError:
    """One corrupted cell: where, what it was, what it became, and how."""

    position: int
    attr: str
    clean: Any
    dirty: Any
    op: str


@dataclass
class InjectionReport:
    """The output of one injection run."""

    dirty: Relation
    clean: Relation
    errors: list[InjectedError] = field(default_factory=list)

    @property
    def error_cells(self) -> int:
        return len(self.errors)

    def errors_by_attr(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for e in self.errors:
            out[e.attr] = out.get(e.attr, 0) + 1
        return out

    def error_positions(self) -> set[tuple[int, str]]:
        return {(e.position, e.attr) for e in self.errors}


class ErrorInjector:
    """Corrupt cells of selected attributes at a given rate.

    ``ops`` maps attribute name to the noise operators applicable to it
    (e.g. phones get ``digit_noise``, names get ``abbreviate`` and
    typos). Attributes not in ``ops`` are never corrupted. The injector
    guarantees ``dirty != clean`` for every recorded error: operators
    that no-op (too-short values) are retried with others, and the cell
    is skipped if none succeeds.
    """

    def __init__(
        self,
        ops: Mapping[str, Sequence[tuple[str, Corruptor]]],
        *,
        rate: float = 0.2,
        seed: int = 0,
        max_errors_per_tuple: int | None = None,
    ):
        if not 0.0 <= rate <= 1.0:
            raise ValidationError(f"error rate must be in [0, 1], got {rate}")
        self.ops = {a: list(cands) for a, cands in ops.items()}
        self.rate = rate
        self.seed = seed
        self.max_errors_per_tuple = max_errors_per_tuple

    def inject(self, clean: Relation) -> InjectionReport:
        """Return a corrupted copy of ``clean`` plus the error record."""
        rng = random.Random(self.seed)
        schema = clean.schema
        for attr in self.ops:
            schema.require([attr])
        dirty = Relation(schema)
        errors: list[InjectedError] = []
        for pos, row in enumerate(clean.rows()):
            values = row.to_dict()
            budget = self.max_errors_per_tuple
            for attr, candidates in self.ops.items():
                if budget is not None and budget <= 0:
                    break
                if rng.random() >= self.rate:
                    continue
                original = values[attr]
                ops = list(candidates)
                rng.shuffle(ops)
                for op_name, op in ops:
                    corrupted = op(original, rng)
                    if corrupted != original:
                        values[attr] = corrupted
                        errors.append(
                            InjectedError(pos, attr, original, corrupted, op_name)
                        )
                        if budget is not None:
                            budget -= 1
                        break
            dirty.append(values)
        return InjectionReport(dirty=dirty, clean=clean, errors=errors)
