"""Workload generation: value pools, UK geography, noise operators and a
ground-truth-preserving error injector.

The paper's demo ran on live UK-customer data entry; the reproduction
generates equivalent synthetic workloads. The crucial property is that
every injected error is *recorded* — dirty tuple, clean tuple and the
exact corrupted cells — so repair quality (precision / recall / new
errors introduced) is measurable, which the paper's booth could only
eyeball.
"""

from repro.datagen.pools import (
    FIRST_NAMES,
    ITEMS,
    LAST_NAMES,
    STREET_NAMES,
    UKRegion,
    UK_REGIONS,
    TOLL_FREE_AC,
    region_for_ac,
    region_for_city,
)
from repro.datagen.noise import (
    NOISE_OPS,
    abbreviate,
    blank,
    case_mangle,
    digit_noise,
    typo_drop,
    typo_insert,
    typo_replace,
    typo_swap,
)
from repro.datagen.inject import ErrorInjector, InjectedError, InjectionReport

__all__ = [
    "FIRST_NAMES",
    "LAST_NAMES",
    "STREET_NAMES",
    "ITEMS",
    "UKRegion",
    "UK_REGIONS",
    "TOLL_FREE_AC",
    "region_for_ac",
    "region_for_city",
    "NOISE_OPS",
    "typo_replace",
    "typo_swap",
    "typo_drop",
    "typo_insert",
    "abbreviate",
    "case_mangle",
    "digit_noise",
    "blank",
    "ErrorInjector",
    "InjectedError",
    "InjectionReport",
]
