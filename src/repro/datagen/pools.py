"""Value pools: names, streets, items and paper-style UK geography.

City names follow the paper's abbreviated forms ("Ldn", "Edi") and
area codes its 3-digit style ("020", "131"); each region carries the
postcode districts its zips are drawn from, so generated master data is
internally consistent (AC ↔ city ↔ zip district), which is exactly what
rules like ϕ9 (AC → city) rely on.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ValidationError


@dataclass(frozen=True)
class UKRegion:
    """One dialling region: area code, paper-style city, zip districts."""

    ac: str
    city: str
    districts: tuple[str, ...]


#: The non-geographic toll-free area code — rule ϕ9's ``AC ≠ 0800``.
TOLL_FREE_AC = "0800"

UK_REGIONS: tuple[UKRegion, ...] = (
    UKRegion("020", "Ldn", ("SW1", "EC1", "NW1", "SE10", "N16")),
    UKRegion("131", "Edi", ("EH1", "EH8", "EH9", "EH16")),
    UKRegion("161", "Man", ("M1", "M14", "M20")),
    UKRegion("121", "Bir", ("B1", "B15", "B29")),
    UKRegion("141", "Gla", ("G1", "G12", "G41")),
    UKRegion("113", "Lee", ("LS1", "LS6", "LS17")),
    UKRegion("117", "Bri", ("BS1", "BS8", "BS16")),
    UKRegion("151", "Liv", ("L1", "L8", "L18")),
    UKRegion("114", "She", ("S1", "S7", "S11")),
    UKRegion("115", "Not", ("NG1", "NG7")),
    UKRegion("116", "Lei", ("LE1", "LE2")),
    UKRegion("118", "Rea", ("RG1", "RG6")),
    UKRegion("191", "New", ("NE1", "NE2")),
    UKRegion("201", "Dur", ("DH1", "DH7")),
    UKRegion("137", "Abe", ("AB1", "AB2")),
    UKRegion("129", "Car", ("CF1", "CF5")),
)

_BY_AC = {r.ac: r for r in UK_REGIONS}
_BY_CITY = {r.city: r for r in UK_REGIONS}


def region_for_ac(ac: str) -> UKRegion:
    try:
        return _BY_AC[ac]
    except KeyError:
        raise ValidationError(f"unknown area code {ac!r}") from None


def region_for_city(city: str) -> UKRegion:
    try:
        return _BY_CITY[city]
    except KeyError:
        raise ValidationError(f"unknown city {city!r}") from None


FIRST_NAMES: tuple[str, ...] = (
    "Robert", "Mark", "James", "John", "Michael", "David", "William", "Richard",
    "Thomas", "Charles", "Daniel", "Matthew", "Andrew", "Edward", "George",
    "Oliver", "Harry", "Jack", "Alfred", "Henry", "Peter", "Simon", "Paul",
    "Stephen", "Colin", "Graham", "Neil", "Keith", "Alan", "Brian",
    "Mary", "Susan", "Margaret", "Patricia", "Elizabeth", "Jennifer", "Linda",
    "Barbara", "Sarah", "Karen", "Nancy", "Lisa", "Emily", "Sophie", "Olivia",
    "Amelia", "Isla", "Grace", "Freya", "Charlotte", "Alice", "Emma", "Lucy",
    "Hannah", "Rachel", "Claire", "Fiona", "Janet", "Helen", "Diane",
)

#: Common short forms; the injector uses them for realistic name noise
#: (the demo's 'Robert' entered as 'Bob', 'Mark' entered as 'M.').
NICKNAMES: dict[str, str] = {
    "Robert": "Bob",
    "James": "Jim",
    "John": "Jack",
    "Michael": "Mike",
    "David": "Dave",
    "William": "Bill",
    "Richard": "Dick",
    "Thomas": "Tom",
    "Charles": "Charlie",
    "Daniel": "Dan",
    "Matthew": "Matt",
    "Andrew": "Andy",
    "Edward": "Ted",
    "Margaret": "Peggy",
    "Patricia": "Pat",
    "Elizabeth": "Liz",
    "Jennifer": "Jen",
    "Susan": "Sue",
}

LAST_NAMES: tuple[str, ...] = (
    "Brady", "Smith", "Jones", "Taylor", "Brown", "Williams", "Wilson",
    "Johnson", "Davies", "Robinson", "Wright", "Thompson", "Evans", "Walker",
    "White", "Roberts", "Green", "Hall", "Wood", "Jackson", "Clarke", "Hill",
    "Scott", "Moore", "Cooper", "Ward", "Morris", "King", "Harris", "Baker",
    "Lee", "Allen", "Morgan", "Hughes", "Edwards", "Lewis", "Turner",
    "Parker", "Cook", "Bell", "Murphy", "Bailey", "Collins", "Fisher",
    "Reid", "Stewart", "Murray", "Grant", "Watson", "Fraser",
)

STREET_NAMES: tuple[str, ...] = (
    "Elm St", "Baker St", "High St", "Church Rd", "Station Rd", "Main St",
    "Park Ave", "Victoria Rd", "Green Ln", "Mill Ln", "Queen St", "King St",
    "New Rd", "School Ln", "Manor Rd", "Chapel St", "Bridge St", "North Rd",
    "South St", "West End", "East Ave", "London Rd", "York Pl", "Castle Ter",
    "Princes St", "George Sq", "Abbey Rd", "Oxford St", "Regent Ter",
    "Holly Dr",
)

ITEMS: tuple[str, ...] = (
    "CD", "DVD", "Book", "Laptop", "Phone", "Tablet", "Camera", "Printer",
    "Monitor", "Keyboard", "Mouse", "Headset", "Speaker", "Charger",
    "Router", "Webcam",
)
