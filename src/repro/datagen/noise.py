"""Noise operators: the ways real data entry goes wrong.

Each operator takes ``(value, rng)`` and returns a corrupted value (or
the input unchanged when it is too short to corrupt — the injector
detects no-ops and retries with another operator). All operators are
deterministic given the ``random.Random`` instance.
"""

from __future__ import annotations

import random
import string

_LETTERS = string.ascii_lowercase


def typo_replace(value: str, rng: random.Random) -> str:
    """Replace one character with a random letter/digit of the same class."""
    if not value:
        return value
    i = rng.randrange(len(value))
    ch = value[i]
    if ch.isdigit():
        new = rng.choice([d for d in string.digits if d != ch])
    elif ch.isalpha():
        new = rng.choice([c for c in _LETTERS if c != ch.lower()])
        if ch.isupper():
            new = new.upper()
    else:
        return value
    return value[:i] + new + value[i + 1 :]


def typo_swap(value: str, rng: random.Random) -> str:
    """Transpose two adjacent characters."""
    if len(value) < 2:
        return value
    i = rng.randrange(len(value) - 1)
    return value[:i] + value[i + 1] + value[i] + value[i + 2 :]


def typo_drop(value: str, rng: random.Random) -> str:
    """Drop one character."""
    if len(value) < 2:
        return value
    i = rng.randrange(len(value))
    return value[:i] + value[i + 1 :]


def typo_insert(value: str, rng: random.Random) -> str:
    """Insert a random letter."""
    i = rng.randrange(len(value) + 1)
    return value[:i] + rng.choice(_LETTERS) + value[i:]


def abbreviate(value: str, rng: random.Random) -> str:
    """'Mark' -> 'M.' — the demo's first-name abbreviation error."""
    if not value or not value[0].isalpha():
        return value
    return value[0].upper() + "."


def case_mangle(value: str, rng: random.Random) -> str:
    """Lower-case the whole value ('EH8 4AH' -> 'eh8 4ah')."""
    lowered = value.lower() if isinstance(value, str) else value
    return lowered


def digit_noise(value: str, rng: random.Random) -> str:
    """Corrupt one digit (phone-number style errors)."""
    digits = [i for i, ch in enumerate(value) if ch.isdigit()]
    if not digits:
        return value
    i = rng.choice(digits)
    new = rng.choice([d for d in string.digits if d != value[i]])
    return value[:i] + new + value[i + 1 :]


def blank(value: str, rng: random.Random) -> str:
    """The field was left empty."""
    return ""


#: Name -> operator registry (used by CLI/scenario error specifications).
NOISE_OPS = {
    "typo_replace": typo_replace,
    "typo_swap": typo_swap,
    "typo_drop": typo_drop,
    "typo_insert": typo_insert,
    "abbreviate": abbreviate,
    "case_mangle": case_mangle,
    "digit_noise": digit_noise,
    "blank": blank,
}
