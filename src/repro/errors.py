"""Exception hierarchy for the CerFix reproduction.

Every error raised by this package derives from :class:`CerFixError`, so
callers embedding the library can catch one base class. Subclasses are
split by subsystem: schema/relation handling, rule specification and
parsing, chase-time conflicts, combinatorial budget guards, master-data
diagnostics, and monitor-session misuse.
"""

from __future__ import annotations


class CerFixError(Exception):
    """Base class for all errors raised by this package."""


class SchemaError(CerFixError):
    """A schema is malformed, or an attribute reference does not resolve."""


class RelationError(CerFixError):
    """A relation operation failed (arity mismatch, unknown column, ...)."""


class RuleError(CerFixError):
    """An editing rule is malformed with respect to its schemas."""


class PatternError(CerFixError):
    """A pattern tuple is malformed (unknown attribute, bad condition)."""


class ParseError(CerFixError):
    """Textual rule/CFD/MD syntax could not be parsed.

    Carries the offending ``text`` and a human-readable ``reason``.
    """

    def __init__(self, text: str, reason: str):
        super().__init__(f"cannot parse {text!r}: {reason}")
        self.text = text
        self.reason = reason


class ConflictError(CerFixError):
    """Two certain fixes disagree on the value of an attribute.

    Raised by the chase in strict mode; the ``witness`` records the
    attribute, the competing values and the provenance of each, which is
    exactly the evidence that the rule set is inconsistent with the master
    data (or that a user validation was wrong).
    """

    def __init__(self, message: str, witness=None):
        super().__init__(message)
        self.witness = witness


class BudgetExceededError(CerFixError):
    """An exact combinatorial procedure exceeded its explicit budget.

    Every exponential analysis in this package (certainty tests, region
    search, consistency checking) takes a budget; exceeding it raises this
    error instead of silently truncating, so callers can either raise the
    budget or opt in to the clearly-flagged sampling fallback.
    """


class MasterDataError(CerFixError):
    """Master data violates an assumption (e.g. schema mismatch on load)."""


class DirtyDataError(CerFixError):
    """A DB-native dirty-relation operation failed or was refused.

    Examples: the dirty table is missing or its columns do not match the
    input schema, a cell value cannot round-trip the database losslessly,
    an undo was requested against a table that was mutated after the run
    (digest mismatch), or a resume named an unknown/mismatched run.
    """


class MonitorError(CerFixError):
    """A data-monitor session was driven incorrectly.

    Examples: validating an attribute that does not exist, validating after
    the session already reached a certain fix, or reading the fix of an
    incomplete session.
    """


class ScrapeError(CerFixError):
    """A cluster-monitor scrape could not reach or parse an endpoint."""


class ValidationError(CerFixError):
    """User-supplied input (CLI values, generator parameters) is invalid."""
