"""The CerFix engine facade — the library's main entry point.

Bundles the Fig. 1 architecture: rule engine (a validated
:class:`~repro.core.ruleset.RuleSet`), master data manager, region
finder, data monitor and data auditing, behind one object:

>>> from repro import CerFix
>>> from repro.scenarios import uk_customers as uk
>>> engine = CerFix(uk.paper_ruleset(), uk.paper_master())
>>> report = engine.check_consistency()          # rule engine static analysis
>>> session = engine.session(uk.fig3_tuple(), "t1")   # data monitor
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, Mapping, Sequence

from repro.errors import MasterDataError
from repro.audit.log import AuditLog
from repro.batch.pipeline import BatchCleaner, BatchResult
from repro.core.certainty import CertaintyMode, Scenario, is_certain_region
from repro.core.chase import ChaseResult, chase
from repro.core.consistency import ConsistencyReport, check_consistency
from repro.core.region import RankedRegion, Region
from repro.core.region_finder import find_certain_regions
from repro.core.ruleset import RuleSet
from repro.master.manager import MasterDataManager
from repro.master.store import MasterStore, resolve_master
from repro.monitor.session import MonitorSession
from repro.obs.metrics import get_registry
from repro.monitor.stream import StreamProcessor, StreamReport
from repro.monitor.suggest import SuggestionStrategy
from repro.monitor.user import User
from repro.relational.relation import Relation


@dataclass(frozen=True)
class MasterUpdateReport:
    """The outcome of a master-data update (see CerFix.update_master)."""

    added: int
    removed: int
    regions_kept: tuple
    regions_dropped: tuple  # (RankedRegion, CertaintyReport) pairs

    def describe(self) -> str:
        lines = [
            f"master update: +{self.added} / -{self.removed} tuples; "
            f"{len(self.regions_kept)} regions kept, {len(self.regions_dropped)} dropped"
        ]
        for ranked, report in self.regions_dropped:
            lines.append(f"  dropped {ranked.region.render()}: {report.describe()}")
        return "\n".join(lines)


class CerFix:
    """A configured CerFix instance.

    Parameters mirror the demo's initialisation step: the rule set (which
    carries both schemas) and the master data. ``mode`` / ``scenario``
    pick the certainty semantics (see DESIGN.md §1); ``strategy`` the
    suggestion policy of the data monitor.

    ``master`` may be a bare :class:`Relation` (stored under the default
    single-relation backend), any
    :class:`~repro.master.store.MasterStore`, or a ready
    :class:`MasterDataManager`. ``store`` selects a backend by name for
    the bare-relation form — ``"single"``, ``"sharded"`` (with
    ``store_shards``), ``"sqlite"`` (with ``store_path``) or
    ``"remote"`` (with ``store_urls``, one entry per shard — a
    shard-server url, or a list of replica urls for client-side
    failover; the master content then lives on the servers, so
    ``master`` may be ``None`` — when a relation *is* given its content
    digest is verified against the cluster, every replica included).
    Every backend produces bit-identical
    fixes (the conformance suite enforces this), so the choice is
    purely about scale, durability and topology.
    """

    def __init__(
        self,
        ruleset: RuleSet,
        master: Relation | MasterDataManager | MasterStore | None,
        *,
        mode: CertaintyMode = CertaintyMode.STRICT,
        scenario: Scenario | None = None,
        strategy: SuggestionStrategy = SuggestionStrategy.CORE_FIRST,
        audit: AuditLog | None = None,
        use_index: bool = True,
        max_combos: int = 50_000,
        store: str | None = None,
        store_shards: int = 4,
        store_path: Any = None,
        store_urls: Any = None,
    ):
        self.ruleset = ruleset
        master = resolve_master(
            master, store, shards=store_shards, path=store_path, urls=store_urls
        )
        if master is None:
            raise MasterDataError(
                "master data is required (master=None is only valid with "
                "store='remote', where the shard servers hold the content)"
            )
        self.master = master if isinstance(master, MasterDataManager) else MasterDataManager(master)
        self.mode = mode
        self.scenario = scenario
        self.strategy = strategy
        self.audit = audit if audit is not None else AuditLog()
        self.use_index = use_index
        self.max_combos = max_combos
        self.regions: tuple[RankedRegion, ...] = ()
        if use_index:
            self.master.prebuild(ruleset)
        # One registry dump tells the whole story: audit-log size and
        # master-store shape ride along with the engine/batch counters.
        # Sources are held weakly and keyed last-wins, so short-lived
        # engines (tests) neither leak nor fight over the slots.
        registry = get_registry()
        registry.register_source("audit", self.audit.stats)
        registry.register_source("store", self.master.store.stats)

    # -- rule engine ---------------------------------------------------------

    def check_consistency(self, **kwargs) -> ConsistencyReport:
        """Static analysis: do the rules contradict each other w.r.t. the
        master data? (Runs on rule import in the demo.)"""
        return check_consistency(self.ruleset, self.master, **kwargs)

    # -- region finder ---------------------------------------------------------

    def precompute_regions(self, k: int = 5, **kwargs) -> tuple[RankedRegion, ...]:
        """Compute and cache the top-k certain regions (the demo's
        initial suggestions)."""
        kwargs.setdefault("mode", self.mode)
        kwargs.setdefault("scenario", self.scenario)
        self.regions = tuple(find_certain_regions(self.ruleset, self.master, k=k, **kwargs))
        return self.regions

    def certify_region(self, region: Region, **kwargs):
        """Exact certainty check for a user-proposed region."""
        kwargs.setdefault("mode", self.mode)
        kwargs.setdefault("scenario", self.scenario)
        return is_certain_region(
            region.attrs, region.tableau, self.ruleset, self.master, **kwargs
        )

    # -- data monitor ----------------------------------------------------------

    def session(
        self,
        values: Mapping[str, Any],
        tuple_id: str = "t",
        *,
        master: MasterDataManager | None = None,
        **kwargs,
    ) -> MonitorSession:
        """Open an interactive monitoring session for one input tuple.

        ``master`` overrides the manager the session probes through —
        the async entry service injects its shared cache/batcher
        manager here (see :meth:`serve_async`); by default the engine's
        own manager is used. Caching managers are probe-transparent, so
        the override can only change speed, never the fix.
        """
        kwargs.setdefault("regions", self.regions)
        kwargs.setdefault("strategy", self.strategy)
        kwargs.setdefault("mode", self.mode)
        kwargs.setdefault("scenario", self.scenario)
        kwargs.setdefault("audit", self.audit)
        kwargs.setdefault("use_index", self.use_index)
        kwargs.setdefault("max_combos", self.max_combos)
        manager = master if master is not None else self.master
        return MonitorSession(self.ruleset, manager, values, tuple_id, **kwargs)

    def fix(
        self,
        values: Mapping[str, Any],
        user: User,
        tuple_id: str = "t",
        *,
        max_rounds: int | None = None,
        **kwargs,
    ) -> MonitorSession:
        """Run a full monitor loop with a user model; returns the session."""
        session = self.session(values, tuple_id, **kwargs)
        session.run(user, max_rounds=max_rounds)
        return session

    def stream(
        self,
        dirty: Relation,
        truth: Relation | None = None,
        *,
        user_factory: Callable[[str, Mapping[str, Any] | None], User] | None = None,
        tuple_ids: Sequence[str] | None = None,
        max_rounds: int | None = None,
    ) -> StreamReport:
        """Monitor a stream of incoming tuples (point-of-entry cleaning)."""
        processor = StreamProcessor(
            self.ruleset,
            self.master,
            regions=self.regions,
            strategy=self.strategy,
            mode=self.mode,
            scenario=self.scenario,
            audit=self.audit,
            use_index=self.use_index,
            max_rounds=max_rounds,
        )
        return processor.process(
            dirty, truth, user_factory=user_factory, tuple_ids=tuple_ids
        )

    def clean_relation(
        self,
        dirty: Relation,
        truth: Relation | None = None,
        *,
        workers: int = 1,
        backend: str = "thread",
        shards: int | None = None,
        dedupe: bool = True,
        validated: Sequence[str] = (),
        journal_path: Any = None,
        cache_path: Any = None,
        tuple_ids: Sequence[str] | None = None,
        max_rounds: int | None = None,
        cache_size: int = 4096,
    ) -> BatchResult:
        """Clean a whole relation through the batch pipeline.

        The batch counterpart of :meth:`stream`: duplicate repair
        signatures are resolved once, master probes are LRU-cached, and
        the plan is sharded across ``workers`` (``backend`` picks threads
        or processes; ``workers=1`` is the deterministic serial path —
        parallel runs produce bit-identical output). ``journal_path``
        checkpoints per-shard progress so an interrupted run resumes
        without recleaning; ``cache_path`` persists the probe cache
        across runs (warm-started only when master content and rule
        set are unchanged). Returns a :class:`BatchResult` carrying the
        repaired relation and the :class:`BatchReport`; per-cell
        provenance lands in :attr:`audit`.
        """
        cleaner = BatchCleaner(
            self.ruleset,
            self.master,
            mode=self.mode,
            scenario=self.scenario,
            strategy=self.strategy,
            regions=self.regions,
            audit=self.audit,
            use_index=self.use_index,
            max_combos=self.max_combos,
            cache_size=cache_size,
        )
        return cleaner.clean(
            dirty,
            truth,
            workers=workers,
            backend=backend,
            shards=shards,
            dedupe=dedupe,
            validated=validated,
            journal_path=journal_path,
            cache_path=cache_path,
            tuple_ids=tuple_ids,
            max_rounds=max_rounds,
        )

    def clean_table(
        self,
        db: Any,
        *,
        table: str = "dirty",
        page_rows: int | None = None,
        dry_run: bool = False,
        resume: str | None = None,
        workers: int = 1,
        backend: str = "thread",
        shards: int | None = None,
        dedupe: bool = True,
        validated: Sequence[str] = (),
        max_rounds: int | None = None,
        cache_size: int = 4096,
        journal_dir: Any = None,
    ):
        """Clean a dirty relation where it lives: in a database table.

        The DB-native counterpart of :meth:`clean_relation` — ``db`` is
        a sqlite path (or a :class:`~repro.dirty.backend.DbBackend`) and
        the table streams through the batch pipeline in fixed-size
        pages (``page_rows``, or ``CERFIX_PAGE_ROWS``), so relations
        larger than memory clean end to end with fixes bit-identical to
        the in-memory path. Every cell change is archived reversibly in
        the same file; ``dry_run=True`` reports without committing
        anything (the connection is read-only), ``resume=<run-id>``
        continues an interrupted run — committed pages are skipped and
        the in-flight page resumes from its checkpoint journal. Undo a
        committed run with :meth:`undo`. Returns a
        :class:`~repro.dirty.cleaner.DbCleanResult`.
        """
        from repro.dirty.cleaner import DbCleaner
        from repro.dirty.table import DirtyTable

        batch = BatchCleaner(
            self.ruleset,
            self.master,
            mode=self.mode,
            scenario=self.scenario,
            strategy=self.strategy,
            regions=self.regions,
            audit=self.audit,
            use_index=self.use_index,
            max_combos=self.max_combos,
            cache_size=cache_size,
        )
        cleaner = DbCleaner(
            batch,
            DirtyTable(db, table),
            page_rows=page_rows,
            journal_dir=journal_dir,
        )
        return cleaner.clean(
            workers=workers,
            backend=backend,
            shards=shards,
            dedupe=dedupe,
            validated=tuple(validated),
            max_rounds=max_rounds,
            dry_run=dry_run,
            resume=resume,
        )

    def undo(self, db: Any, run_id: str, *, table: str = "dirty"):
        """Restore the exact pre-run table of a recorded clean run.

        Digest-verified both ways: refuses if the table was modified
        after the run committed, and only commits the restore once the
        rebuilt table matches the recorded pre-run digest. Re-undoing an
        already-undone run is a no-op. Returns the updated
        :class:`~repro.dirty.archive.RunRecord`.
        """
        from repro.dirty.cleaner import undo_run
        from repro.dirty.table import DirtyTable

        return undo_run(DirtyTable(db, table), run_id)

    def serve_async(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        **service_options,
    ):
        """Start the asyncio entry service on a background event-loop
        thread; returns the running
        :class:`~repro.service.http.AsyncCerFixServer` (``.url`` carries
        the bound address, ``.close()`` stops it).

        The service multiplexes concurrent monitor sessions over this
        engine behind a shared probe cache, a probe micro-batcher and
        bounded queues with 429 backpressure — see :mod:`repro.service`.
        ``service_options`` forward to
        :class:`~repro.service.app.AsyncCerFixService` (``max_sessions``,
        ``cache_size``, ``batch_window_ms``, …).
        """
        from repro.service.app import AsyncCerFixService
        from repro.service.http import AsyncCerFixServer

        service = AsyncCerFixService(self, **service_options)
        return AsyncCerFixServer(service, host=host, port=port).start()

    # -- master data maintenance ---------------------------------------------

    def update_master(
        self,
        add: Iterable[Mapping[str, Any]] = (),
        remove: Iterable[int] = (),
        **kwargs,
    ) -> "MasterUpdateReport":
        """Apply master-data changes and re-certify the cached regions.

        Master data evolves (that is the point of MDM); a change can
        silently invalidate a precomputed certain region — e.g. a new
        person sharing a mobile number makes ϕ4 ambiguous. This method
        applies the changes, re-runs the exact certainty test on every
        cached region, keeps the survivors and reports the casualties
        with their counterexamples.

        Removal uses current row positions; audit provenance recorded
        earlier refers to the pre-update master (snapshot semantics).
        Changes go through the store, so persistent backends (sqlite)
        write through and derived probe structures invalidate.
        """
        n_added, n_removed = self.master.apply_update(add=add, remove=remove)
        if self.use_index:
            self.master.prebuild(self.ruleset)
        kept: list[RankedRegion] = []
        dropped: list[tuple[RankedRegion, Any]] = []
        for ranked in self.regions:
            report = self.certify_region(ranked.region, **kwargs)
            if report.certain and not report.vacuous:
                kept.append(ranked)
            else:
                dropped.append((ranked, report))
        self.regions = tuple(kept)
        return MasterUpdateReport(
            added=n_added,
            removed=n_removed,
            regions_kept=tuple(kept),
            regions_dropped=tuple(dropped),
        )

    # -- low-level escape hatch --------------------------------------------------

    def chase_once(self, values: Mapping[str, Any], validated: Iterable[str], **kwargs) -> ChaseResult:
        """One chase run, outside any session (no audit side effects)."""
        kwargs.setdefault("use_index", self.use_index)
        return chase(values, validated, self.ruleset, self.master, **kwargs)

    def __repr__(self) -> str:
        return (
            f"CerFix({len(self.ruleset)} rules, master {len(self.master)} tuples, "
            f"mode={self.mode.value}, strategy={self.strategy.value})"
        )
