"""A DBLP-shaped scenario: cleaning citation records.

The companion paper's experimental study ([7]) evaluates on HOSP *and*
DBLP; this scenario covers the second family: bibliographic records
keyed by a (format-insensitive) title match against a curated
bibliography, plus a venue vocabulary derived from constant CFDs.

Input records (9 attributes): title, authors, venue (acronym),
venue_full, publisher, year, pages, doi and a free-form ``note`` (the
payload cell the user must vouch for). Master bibliography: title,
authors, venue, year, pages, doi. Titles match under the ``alnum``
operator, so case and spacing differences (the classic citation mess)
still hit the master entry — and the self-normalising title rule
rewrites a validated-but-mangled title to its canonical form, like the
demo's ϕ1 does for zips.

Mandatory attributes: {title, note} → an oracle-driven session validates
2 of 9 cells (≈22%), the same regime as the paper's 20%/80% claim.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Iterator

from repro.core.certainty import fresh
from repro.core.pattern import Eq, PatternTuple
from repro.core.rule import EditingRule, MasterColumn, MatchPair
from repro.core.ruleset import RuleSet
from repro.datagen.inject import ErrorInjector, InjectionReport
from repro.datagen.noise import blank, case_mangle, digit_noise, typo_replace, typo_swap
from repro.datagen.pools import LAST_NAMES
from repro.relational.relation import Relation
from repro.relational.schema import Attribute, Schema
from repro.rules.cfd import CFD, CFDRow
from repro.rules.derive import editing_rules_from_cfds

#: (acronym, full name, publisher)
VENUES: tuple[tuple[str, str, str], ...] = (
    ("VLDB", "Proceedings of the VLDB Endowment", "VLDB Endowment"),
    ("SIGMOD", "ACM SIGMOD International Conference on Management of Data", "ACM"),
    ("ICDE", "IEEE International Conference on Data Engineering", "IEEE"),
    ("EDBT", "International Conference on Extending Database Technology", "OpenProceedings"),
    ("PODS", "ACM Symposium on Principles of Database Systems", "ACM"),
    ("CIKM", "ACM International Conference on Information and Knowledge Management", "ACM"),
    ("KDD", "ACM SIGKDD Conference on Knowledge Discovery and Data Mining", "ACM"),
    ("TODS", "ACM Transactions on Database Systems", "ACM"),
    ("TKDE", "IEEE Transactions on Knowledge and Data Engineering", "IEEE"),
    ("VLDBJ", "The VLDB Journal", "Springer"),
)

_TITLE_HEADS = (
    "Towards", "Revisiting", "Scaling", "Optimizing", "Learning", "Indexing",
    "Sampling", "Verifying", "Repairing", "Discovering",
)
_TITLE_TOPICS = (
    "Certain Fixes", "Editing Rules", "Master Data", "Functional Dependencies",
    "Data Cleaning", "Entity Resolution", "Query Plans", "Stream Joins",
    "Graph Pattern Matching", "Provenance Tracking", "Schema Mappings",
    "Consistency Checking",
)
_TITLE_TAILS = (
    "in Distributed Systems", "with Editing Rules", "at Scale", "over Streams",
    "for Relational Data", "under Constraints", "with Master Data",
    "in Practice", "via Sampling", "with Guarantees",
)

MASTER_SCHEMA = Schema(
    "bibliography",
    [
        Attribute("title", "str", "canonical title (key under alnum matching)"),
        Attribute("authors", "str"),
        Attribute("venue", "str", "venue acronym"),
        Attribute("year", "str"),
        Attribute("pages", "str"),
        Attribute("doi", "str"),
    ],
)

INPUT_SCHEMA = Schema(
    "citation",
    [
        Attribute("title", "str"),
        Attribute("authors", "str"),
        Attribute("venue", "str", "acronym"),
        Attribute("venue_full", "str"),
        Attribute("publisher", "str"),
        Attribute("year", "str"),
        Attribute("pages", "str"),
        Attribute("doi", "str"),
        Attribute("note", "str", "free-form payload — user-validated"),
    ],
)


def venue_cfds() -> list[CFD]:
    """The venue vocabulary as constant CFDs (acronym → full/publisher)."""
    full_rows = tuple(
        CFDRow(PatternTuple({"venue": Eq(v)}), Eq(full)) for v, full, _ in VENUES
    )
    pub_rows = tuple(
        CFDRow(PatternTuple({"venue": Eq(v)}), Eq(pub)) for v, _, pub in VENUES
    )
    return [
        CFD("cfd_venue_full", ("venue",), "venue_full", full_rows),
        CFD("cfd_publisher", ("venue",), "publisher", pub_rows),
    ]


def publication_rules() -> list[EditingRule]:
    """Title-keyed master rules (alnum matching) + vocabulary constants.

    ``t_title`` is self-normalising: a validated but case-mangled title
    is rewritten to the bibliography's canonical form.
    """
    key = (MatchPair("title", "title", "alnum"),)
    rules = [
        EditingRule("t_title", key, "title", MasterColumn("title"),
                    description="canonicalise a validated title (alnum match)"),
        EditingRule("t_authors", key, "authors", MasterColumn("authors")),
        EditingRule("t_venue", key, "venue", MasterColumn("venue")),
        EditingRule("t_year", key, "year", MasterColumn("year")),
        EditingRule("t_pages", key, "pages", MasterColumn("pages")),
        EditingRule("t_doi", key, "doi", MasterColumn("doi")),
    ]
    rules += editing_rules_from_cfds(venue_cfds())
    return rules


def publication_ruleset() -> RuleSet:
    return RuleSet(publication_rules(), INPUT_SCHEMA, MASTER_SCHEMA)


def generate_master(n: int, seed: int = 0) -> Relation:
    """``n`` bibliography entries with unique (alnum-normalised) titles."""
    rng = random.Random(seed)
    relation = Relation(MASTER_SCHEMA)
    used: set[str] = set()
    while len(relation) < n:
        title = (
            f"{rng.choice(_TITLE_HEADS)} {rng.choice(_TITLE_TOPICS)} "
            f"{rng.choice(_TITLE_TAILS)}"
        )
        key = "".join(ch for ch in title.casefold() if ch.isalnum())
        if key in used:
            continue
        used.add(key)
        venue, _, _ = rng.choice(VENUES)
        year = str(rng.randrange(2004, 2012))
        first = rng.randrange(1, 1200)
        n_authors = rng.randrange(1, 4)
        authors = ", ".join(
            f"{rng.choice('ABCDEFGHJKLMPRST')}. {rng.choice(LAST_NAMES)}"
            for _ in range(n_authors)
        )
        relation.append(
            {
                "title": title,
                "authors": authors,
                "venue": venue,
                "year": year,
                "pages": f"{first}-{first + rng.randrange(8, 18)}",
                "doi": f"10.14778/{venue.lower()}.{year}.{len(relation):04d}",
            }
        )
    return relation


def clean_inputs_from_master(master: Relation, n: int, seed: int = 0) -> Relation:
    """``n`` clean citations of master entries (the ground truth)."""
    rng = random.Random(seed)
    full = {v: f for v, f, _ in VENUES}
    pub = {v: p for v, _, p in VENUES}
    relation = Relation(INPUT_SCHEMA)
    rows = list(master.rows())
    for i in range(n):
        s = rng.choice(rows)
        relation.append(
            {
                "title": s["title"],
                "authors": s["authors"],
                "venue": s["venue"],
                "venue_full": full[s["venue"]],
                "publisher": pub[s["venue"]],
                "year": s["year"],
                "pages": s["pages"],
                "doi": s["doi"],
                "note": f"imported batch {i % 7}",
            }
        )
    return relation


def default_injector(rate: float = 0.2, seed: int = 0, **kwargs) -> ErrorInjector:
    """Citation-style noise: author typos, venue blanks, year digit slips.

    The title is corrupted only by case mangling — a *correct* title in
    the wrong case, which exercises the self-normalising title rule
    (assure it and watch it get canonicalised)."""
    typos = [("typo_replace", typo_replace), ("typo_swap", typo_swap)]
    ops = {
        "title": [("case_mangle", case_mangle)],
        "authors": typos,
        "venue_full": typos + [("blank", blank)],
        "publisher": [("blank", blank)],
        "year": [("digit_noise", digit_noise)],
        "pages": [("digit_noise", digit_noise)],
        "doi": [("case_mangle", case_mangle), ("blank", blank)],
    }
    return ErrorInjector(ops, rate=rate, seed=seed, **kwargs)


def generate_workload(
    master: Relation,
    n: int,
    *,
    rate: float = 0.2,
    seed: int = 0,
    injector: ErrorInjector | None = None,
) -> InjectionReport:
    """Clean citations + injected errors: (dirty, clean, errors)."""
    clean = clean_inputs_from_master(master, n, seed=seed)
    injector = injector if injector is not None else default_injector(rate=rate, seed=seed + 1)
    return injector.inject(clean)


def scenario_tuples(master: Relation) -> Callable[[], Iterator[dict[str, Any]]]:
    """SCENARIO-mode universe: one correct citation per bibliography
    entry; the note is free (fresh)."""
    full = {v: f for v, f, _ in VENUES}
    pub = {v: p for v, _, p in VENUES}

    def generate() -> Iterator[dict[str, Any]]:
        for s in master.rows():
            yield {
                "title": s["title"],
                "authors": s["authors"],
                "venue": s["venue"],
                "venue_full": full[s["venue"]],
                "publisher": pub[s["venue"]],
                "year": s["year"],
                "pages": s["pages"],
                "doi": s["doi"],
                "note": fresh("note"),
            }

    return generate
