"""A HOSP-shaped scenario: wide schema, key-driven editing rules.

The demo's quantitative claim — "in average, 20% of values are validated
by users while CerFix automatically fixes 80% of the data" — comes from
the authors' experimental study on hospital-style data (the companion
paper [7] evaluates on HOSP, the US hospital quality dataset: 19
attributes, most of them functionally determined by the provider id and
the measure code). This scenario mirrors that shape:

* **input schema** — 19 attributes per measure record;
* **master data** — a provider registry (10 attributes, keyed by
  ``provider_id``);
* **rules** — 9 master-sourced rules keyed on ``provider_id``, 2 on
  ``zip``, and a battery of constant rules *derived from CFDs* for the
  measure-code and geography vocabularies (exercising
  :mod:`repro.rules.derive` end to end).

Exactly 4 of 19 attributes (provider_id, measure_code, score, sample)
are outside every rule target, so an oracle-driven monitor session
validates 4/19 ≈ 21% of cells and CerFix fixes the rest — the paper's
regime.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Iterator

from repro.core.certainty import fresh
from repro.core.rule import EditingRule, MasterColumn, MatchPair
from repro.core.ruleset import RuleSet
from repro.core.pattern import Eq, PatternTuple
from repro.datagen.inject import ErrorInjector, InjectionReport
from repro.datagen.noise import (
    blank,
    case_mangle,
    digit_noise,
    typo_drop,
    typo_replace,
    typo_swap,
)
from repro.relational.relation import Relation
from repro.relational.schema import Attribute, Schema
from repro.rules.cfd import CFD, CFDRow
from repro.rules.derive import editing_rules_from_cfds

# ---------------------------------------------------------------------------
# Vocabularies
# ---------------------------------------------------------------------------

STATES: tuple[tuple[str, str], ...] = (
    ("AL", "Alabama"), ("AZ", "Arizona"), ("CA", "California"),
    ("FL", "Florida"), ("GA", "Georgia"), ("IL", "Illinois"),
    ("NY", "New York"), ("TX", "Texas"),
)

#: (city, state, zip prefix, county, county code)
CITIES: tuple[tuple[str, str, str, str, str], ...] = (
    ("Birmingham", "AL", "352", "Jefferson", "JEF"),
    ("Huntsville", "AL", "358", "Madison", "MAD"),
    ("Phoenix", "AZ", "850", "Maricopa", "MAR"),
    ("Tucson", "AZ", "857", "Pima", "PIM"),
    ("Los Angeles", "CA", "900", "Los Angeles", "LAC"),
    ("San Diego", "CA", "921", "San Diego", "SDC"),
    ("Miami", "FL", "331", "Miami-Dade", "MDC"),
    ("Orlando", "FL", "328", "Orange", "ORA"),
    ("Atlanta", "GA", "303", "Fulton", "FUL"),
    ("Savannah", "GA", "314", "Chatham", "CHA"),
    ("Chicago", "IL", "606", "Cook", "COO"),
    ("Springfield", "IL", "627", "Sangamon", "SAN"),
    ("New York", "NY", "100", "New York", "NYC"),
    ("Buffalo", "NY", "142", "Erie", "ERI"),
    ("Houston", "TX", "770", "Harris", "HAR"),
    ("Dallas", "TX", "752", "Dallas", "DAL"),
)

#: (code, name, condition, category)
MEASURES: tuple[tuple[str, str, str, str], ...] = (
    ("AMI-1", "Aspirin at arrival", "Heart Attack", "Process"),
    ("AMI-2", "Aspirin at discharge", "Heart Attack", "Process"),
    ("AMI-3", "ACE inhibitor for LVSD", "Heart Attack", "Process"),
    ("HF-1", "Discharge instructions", "Heart Failure", "Process"),
    ("HF-2", "LVS function evaluation", "Heart Failure", "Process"),
    ("HF-3", "ACE inhibitor for LVSD", "Heart Failure", "Process"),
    ("PN-2", "Pneumococcal vaccination", "Pneumonia", "Prevention"),
    ("PN-3b", "Blood culture before antibiotic", "Pneumonia", "Process"),
    ("PN-5c", "Initial antibiotic timing", "Pneumonia", "Timing"),
    ("SCIP-1", "Prophylactic antibiotic 1h", "Surgical Care", "Timing"),
    ("SCIP-2", "Antibiotic selection", "Surgical Care", "Process"),
    ("SCIP-3", "Antibiotic discontinued 24h", "Surgical Care", "Timing"),
)

OWNERSHIPS = ("Government", "Voluntary non-profit", "Proprietary")

HOSPITAL_WORDS = (
    "General", "Memorial", "Regional", "Community", "University", "Mercy",
    "Saint Mary's", "Baptist", "Methodist", "County",
)

# ---------------------------------------------------------------------------
# Schemas
# ---------------------------------------------------------------------------

MASTER_SCHEMA = Schema(
    "provider",
    [
        Attribute("provider_id", "str", "CMS provider number (key)"),
        Attribute("hname", "str", "hospital name"),
        Attribute("addr", "str", "street address"),
        Attribute("city", "str"),
        Attribute("state", "str"),
        Attribute("zip", "str"),
        Attribute("county", "str"),
        Attribute("phone", "str"),
        Attribute("ownership", "str"),
        Attribute("emergency", "str", "has emergency service (Yes/No)"),
    ],
)

INPUT_SCHEMA = Schema(
    "measure_record",
    [
        Attribute("provider_id", "str", "CMS provider number"),
        Attribute("hname", "str"),
        Attribute("addr", "str"),
        Attribute("city", "str"),
        Attribute("state", "str"),
        Attribute("state_name", "str"),
        Attribute("zip", "str"),
        Attribute("county", "str"),
        Attribute("county_code", "str"),
        Attribute("phone", "str"),
        Attribute("ownership", "str"),
        Attribute("emergency", "str"),
        Attribute("measure_code", "str"),
        Attribute("measure_name", "str"),
        Attribute("condition", "str"),
        Attribute("category", "str"),
        Attribute("stateavg", "str", "state-average token, <state>-<measure>"),
        Attribute("score", "str", "measure score — payload, user-validated"),
        Attribute("sample", "str", "sample size — payload, user-validated"),
    ],
)

# ---------------------------------------------------------------------------
# Rules
# ---------------------------------------------------------------------------


def vocabulary_cfds() -> list[CFD]:
    """The constant CFDs encoding the measure/geography vocabularies."""
    measure_rows = lambda idx: tuple(  # noqa: E731
        CFDRow(PatternTuple({"measure_code": Eq(m[0])}), Eq(m[idx]))
        for m in MEASURES
    )
    state_rows = tuple(
        CFDRow(PatternTuple({"state": Eq(code)}), Eq(name)) for code, name in STATES
    )
    county_rows = tuple(
        CFDRow(PatternTuple({"county": Eq(county)}), Eq(ccode))
        for _, _, _, county, ccode in {c[3]: c for c in CITIES}.values()
    )
    stateavg_rows = tuple(
        CFDRow(
            PatternTuple({"state": Eq(code), "measure_code": Eq(m[0])}),
            Eq(f"{code}-{m[0]}"),
        )
        for code, _ in STATES
        for m in MEASURES
    )
    return [
        CFD("cfd_mname", ("measure_code",), "measure_name", measure_rows(1)),
        CFD("cfd_cond", ("measure_code",), "condition", measure_rows(2)),
        CFD("cfd_cat", ("measure_code",), "category", measure_rows(3)),
        CFD("cfd_state", ("state",), "state_name", state_rows),
        CFD("cfd_county", ("county",), "county_code", county_rows),
        CFD("cfd_stateavg", ("state", "measure_code"), "stateavg", stateavg_rows),
    ]


def hospital_rules() -> list[EditingRule]:
    """Master-sourced rules (provider key, zip) + CFD-derived constants."""
    key = (MatchPair("provider_id", "provider_id"),)
    rules = [
        EditingRule(f"key_{attr}", key, attr, MasterColumn(attr),
                    description=f"provider id (validated) -> master {attr}")
        for attr in ("hname", "addr", "city", "state", "zip", "county",
                     "phone", "ownership", "emergency")
    ]
    zip_match = (MatchPair("zip", "zip"),)
    rules += [
        EditingRule("zip_city", zip_match, "city", MasterColumn("city"),
                    description="zip (validated) -> master city"),
        EditingRule("zip_state", zip_match, "state", MasterColumn("state"),
                    description="zip (validated) -> master state"),
    ]
    rules += editing_rules_from_cfds(vocabulary_cfds())
    return rules


def hospital_ruleset() -> RuleSet:
    return RuleSet(hospital_rules(), INPUT_SCHEMA, MASTER_SCHEMA)


# ---------------------------------------------------------------------------
# Generation
# ---------------------------------------------------------------------------


def generate_master(n: int, seed: int = 0) -> Relation:
    """``n`` providers with consistent geography and unique keys/zips.

    Zips are unique per provider (so the zip rules decide uniquely) and
    share the city's 3-digit prefix, keeping city/state functionally
    determined by zip as in the real HOSP data.
    """
    rng = random.Random(seed)
    relation = Relation(MASTER_SCHEMA)
    used_zip: set[str] = set()
    for i in range(n):
        city, state, zprefix, county, _ = rng.choice(CITIES)
        while True:
            zipc = f"{zprefix}{rng.randrange(10, 99)}"
            if zipc not in used_zip:
                used_zip.add(zipc)
                break
        relation.append(
            {
                "provider_id": f"P{i:05d}",
                "hname": f"{city} {rng.choice(HOSPITAL_WORDS)} Hospital",
                "addr": f"{rng.randrange(1, 9999)} Hospital Dr",
                "city": city,
                "state": state,
                "zip": zipc,
                "county": county,
                "phone": f"{rng.randrange(200, 999)}-555-{rng.randrange(1000, 9999)}",
                "ownership": rng.choice(OWNERSHIPS),
                "emergency": rng.choice(("Yes", "No")),
            }
        )
    return relation


def clean_inputs_from_master(master: Relation, n: int, seed: int = 0) -> Relation:
    """``n`` clean measure records (the ground truth)."""
    rng = random.Random(seed)
    relation = Relation(INPUT_SCHEMA)
    providers = list(master.rows())
    state_names = dict(STATES)
    county_codes = {c[3]: c[4] for c in CITIES}
    for _ in range(n):
        p = rng.choice(providers)
        code, name, condition, category = rng.choice(MEASURES)
        relation.append(
            {
                "provider_id": p["provider_id"],
                "hname": p["hname"],
                "addr": p["addr"],
                "city": p["city"],
                "state": p["state"],
                "state_name": state_names[p["state"]],
                "zip": p["zip"],
                "county": p["county"],
                "county_code": county_codes[p["county"]],
                "phone": p["phone"],
                "ownership": p["ownership"],
                "emergency": p["emergency"],
                "measure_code": code,
                "measure_name": name,
                "condition": condition,
                "category": category,
                "stateavg": f"{p['state']}-{code}",
                "score": f"{rng.randrange(40, 100)}%",
                "sample": str(rng.randrange(10, 900)),
            }
        )
    return relation


def default_injector(rate: float = 0.2, seed: int = 0, **kwargs) -> ErrorInjector:
    """The HOSP-style error model: typos and blanks across the
    rule-fixable attributes (payload cells stay clean)."""
    typos = [("typo_replace", typo_replace), ("typo_swap", typo_swap)]
    ops = {
        "hname": typos + [("case_mangle", case_mangle)],
        "addr": [("typo_drop", typo_drop)] + typos,
        "city": typos + [("blank", blank)],
        "state": [("blank", blank)],
        "state_name": typos,
        "county": typos,
        "county_code": [("blank", blank)],
        "phone": [("digit_noise", digit_noise)],
        "ownership": [("blank", blank)],
        "emergency": [("blank", blank)],
        "measure_name": typos + [("case_mangle", case_mangle)],
        "condition": typos,
        "category": [("blank", blank)],
        "stateavg": [("typo_replace", typo_replace), ("blank", blank)],
    }
    return ErrorInjector(ops, rate=rate, seed=seed, **kwargs)


def generate_workload(
    master: Relation,
    n: int,
    *,
    rate: float = 0.2,
    seed: int = 0,
    injector: ErrorInjector | None = None,
) -> InjectionReport:
    """Clean measure records + injected errors: (dirty, clean, errors)."""
    clean = clean_inputs_from_master(master, n, seed=seed)
    injector = injector if injector is not None else default_injector(rate=rate, seed=seed + 1)
    return injector.inject(clean)


def scenario_tuples(master: Relation) -> Callable[[], Iterator[dict[str, Any]]]:
    """SCENARIO-mode universe: a correct record pairs a provider with a
    measure; payload cells are free (fresh)."""
    state_names = dict(STATES)
    county_codes = {c[3]: c[4] for c in CITIES}

    def generate() -> Iterator[dict[str, Any]]:
        for p in master.rows():
            for code, name, condition, category in MEASURES:
                yield {
                    "provider_id": p["provider_id"],
                    "hname": p["hname"],
                    "addr": p["addr"],
                    "city": p["city"],
                    "state": p["state"],
                    "state_name": state_names[p["state"]],
                    "zip": p["zip"],
                    "county": p["county"],
                    "county_code": county_codes[p["county"]],
                    "phone": p["phone"],
                    "ownership": p["ownership"],
                    "emergency": p["emergency"],
                    "measure_code": code,
                    "measure_name": name,
                    "condition": condition,
                    "category": category,
                    "stateavg": f"{p['state']}-{code}",
                    "score": fresh("score"),
                    "sample": fresh("sample"),
                }

    return generate
