"""Ready-made scenarios.

``uk_customers`` is the paper's running example (Fig. 2/3, Examples 1–2);
``hospital`` is a HOSP-shaped wide-schema scenario, the regime in which
the paper's "20% user / 80% CerFix" average holds; ``publications`` is a
DBLP-shaped citation scenario (the companion study's second dataset
family) exercising fuzzy title keys and self-normalising rules.
"""

from repro.scenarios import hospital, publications, uk_customers

__all__ = ["uk_customers", "hospital", "publications"]
