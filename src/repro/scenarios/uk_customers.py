"""The paper's running example: UK customer transactions.

Input tuples (Example 1): ``(FN, LN, AC, phn, type, str, city, zip,
item)`` — a customer's name, phone (``type`` 1 = home, 2 = mobile),
address and purchased item. Master tuples (Example 2 / Fig. 2):
``(FN, LN, AC, Hphn, Mphn, str, city, zip, DOB, gender)``. The schemas
differ, as the demo stresses.

This module provides the paper's exact artefacts — master tuples, the
nine editing rules ϕ1–ϕ9 of Fig. 2, the Example 1 / Fig. 3 input tuples,
the CFDs ψ1/ψ2 — plus generators that scale the same shape to arbitrary
sizes for the benchmarks.

Reconstruction note (DESIGN.md, substitution 4): the second master tuple
is only partially readable in the paper's screenshot; we reconstruct it
consistently with the Fig. 3 walkthrough ('M.' normalised to 'Mark' by
ϕ4 via mobile phone 075568485, area code 201, item DVD).
"""

from __future__ import annotations

import random
from typing import Any, Callable, Iterator

from repro.core.certainty import fresh
from repro.core.pattern import Eq, Neq, PatternTuple
from repro.core.rule import EditingRule, MasterColumn, MatchPair
from repro.core.ruleset import RuleSet
from repro.datagen.inject import ErrorInjector, InjectionReport
from repro.datagen.noise import (
    abbreviate,
    blank,
    case_mangle,
    digit_noise,
    typo_drop,
    typo_replace,
    typo_swap,
)
from repro.datagen.pools import (
    FIRST_NAMES,
    ITEMS,
    LAST_NAMES,
    NICKNAMES,
    STREET_NAMES,
    TOLL_FREE_AC,
    UK_REGIONS,
)
from repro.relational.relation import Relation
from repro.relational.schema import Attribute, Schema

# ---------------------------------------------------------------------------
# Schemas
# ---------------------------------------------------------------------------

INPUT_SCHEMA = Schema(
    "customer",
    [
        Attribute("FN", "str", "first name"),
        Attribute("LN", "str", "last name"),
        Attribute("AC", "str", "area code"),
        Attribute("phn", "str", "phone number (home or mobile, per type)"),
        Attribute("type", "str", "1 = home phone, 2 = mobile phone"),
        Attribute("str", "str", "street"),
        Attribute("city", "str", "city"),
        Attribute("zip", "str", "zip code"),
        Attribute("item", "str", "item purchased"),
    ],
)

MASTER_SCHEMA = Schema(
    "person",
    [
        Attribute("FN", "str", "first name"),
        Attribute("LN", "str", "last name"),
        Attribute("AC", "str", "area code"),
        Attribute("Hphn", "str", "home phone"),
        Attribute("Mphn", "str", "mobile phone"),
        Attribute("str", "str", "street"),
        Attribute("city", "str", "city"),
        Attribute("zip", "str", "zip code"),
        Attribute("DOB", "str", "date of birth"),
        Attribute("gender", "str", "gender"),
    ],
)

# ---------------------------------------------------------------------------
# The paper's editing rules (Fig. 2)
# ---------------------------------------------------------------------------


def paper_rules() -> list[EditingRule]:
    """ϕ1–ϕ9 exactly as described in §3 of the paper.

    Zip matching uses the ``alnum`` operator (case/spacing-insensitive),
    which is what makes ϕ1's self-normalisation meaningful: a validated
    but non-canonical zip ('eh8 4ah') is rewritten to the master form.
    Phone matching uses ``digits`` (formatting-insensitive).
    """
    zip_match = (MatchPair("zip", "zip", "alnum"),)
    mob_match = (MatchPair("phn", "Mphn", "digits"),)
    home_match = (MatchPair("AC", "AC"), MatchPair("phn", "Hphn", "digits"))
    mobile = PatternTuple({"type": Eq("2")})
    home = PatternTuple({"type": Eq("1")})
    return [
        EditingRule("phi1", zip_match, "zip", MasterColumn("zip"),
                    description="same zip (validated) -> canonical master zip"),
        EditingRule("phi2", zip_match, "str", MasterColumn("str"),
                    description="same zip (validated) -> master street"),
        EditingRule("phi3", zip_match, "city", MasterColumn("city"),
                    description="same zip (validated) -> master city"),
        EditingRule("phi4", mob_match, "FN", MasterColumn("FN"), mobile,
                    description="mobile phone match (type=2) -> master first name"),
        EditingRule("phi5", mob_match, "LN", MasterColumn("LN"), mobile,
                    description="mobile phone match (type=2) -> master last name"),
        EditingRule("phi6", home_match, "str", MasterColumn("str"), home,
                    description="(AC, home phone) match (type=1) -> master street"),
        EditingRule("phi7", home_match, "city", MasterColumn("city"), home,
                    description="(AC, home phone) match (type=1) -> master city"),
        EditingRule("phi8", home_match, "zip", MasterColumn("zip"), home,
                    description="(AC, home phone) match (type=1) -> master zip"),
        EditingRule("phi9", (MatchPair("AC", "AC"),), "city", MasterColumn("city"),
                    PatternTuple({"AC": Neq(TOLL_FREE_AC)}),
                    description="AC match (AC != 0800) -> master city"),
    ]


def example2_rule() -> EditingRule:
    """Example 2's ϕ1: ((zip, zip) → (AC, AC), tp = ()) — fixes the area
    code from a validated zip. Not part of Fig. 2's nine rules."""
    return EditingRule(
        "phi10",
        (MatchPair("zip", "zip", "alnum"),),
        "AC",
        MasterColumn("AC"),
        description="Example 2: same zip (validated) -> master area code",
    )


def paper_ruleset(*, extended: bool = False) -> RuleSet:
    """Fig. 2's ϕ1–ϕ9 as a validated rule set.

    ``extended=True`` appends Example 2's zip→AC rule (used to reproduce
    the Example 1 walkthrough, where validating zip corrects the AC).
    """
    rules = paper_rules()
    if extended:
        rules.append(example2_rule())
    return RuleSet(rules, INPUT_SCHEMA, MASTER_SCHEMA)


# ---------------------------------------------------------------------------
# The paper's data
# ---------------------------------------------------------------------------


def paper_master() -> Relation:
    """The two Fig. 2 master tuples (second reconstructed; see module doc)."""
    return Relation(
        MASTER_SCHEMA,
        [
            # Example 2's master tuple s.
            ("Robert", "Brady", "131", "6884563", "079172485",
             "501 Elm St", "Edi", "EH8 4AH", "11/11/55", "M"),
            # Reconstructed second tuple behind the Fig. 3 walkthrough.
            ("Mark", "Smith", "201", "7966899", "075568485",
             "20 Baker St", "Dur", "DH1 3LE", "09/03/64", "M"),
        ],
    )


def example1_tuple() -> dict[str, Any]:
    """Example 1's input tuple t (dirty: AC should be 131)."""
    return {
        "FN": "Bob", "LN": "Brady", "AC": "020", "phn": "079172485",
        "type": "2", "str": "501 Elm St", "city": "Edi", "zip": "EH8 4AH",
        "item": "CD",
    }


def example1_truth() -> dict[str, Any]:
    """The correct values behind Example 1 (AC=131; the customer is
    Robert Brady entering his common short name)."""
    return {
        "FN": "Robert", "LN": "Brady", "AC": "131", "phn": "079172485",
        "type": "2", "str": "501 Elm St", "city": "Edi", "zip": "EH8 4AH",
        "item": "CD",
    }


def fig3_tuple() -> dict[str, Any]:
    """The Fig. 3 walkthrough input: 'M.' for Mark, dirty address cells."""
    return {
        "FN": "M.", "LN": "Smyth", "AC": "201", "phn": "075568485",
        "type": "2", "str": "21 Baker Street", "city": "Newcastle",
        "zip": "dh1 3le", "item": "DVD",
    }


def fig3_truth() -> dict[str, Any]:
    """Ground truth for the Fig. 3 tuple (entity = second master tuple)."""
    return {
        "FN": "Mark", "LN": "Smith", "AC": "201", "phn": "075568485",
        "type": "2", "str": "20 Baker St", "city": "Dur", "zip": "DH1 3LE",
        "item": "DVD",
    }


def paper_cfds():
    """ψ1/ψ2 from Example 1 (and their siblings for every region), used by
    the heuristic-repair baseline of experiment E4."""
    from repro.rules.cfd import CFD, CFDRow

    rows = tuple(
        CFDRow(PatternTuple({"AC": Eq(r.ac)}), Eq(r.city)) for r in UK_REGIONS
    )
    return [CFD("psi_ac_city", ("AC",), "city", rows)]


# ---------------------------------------------------------------------------
# Scaled generation
# ---------------------------------------------------------------------------


def generate_master(n: int, seed: int = 0) -> Relation:
    """``n`` internally-consistent master persons.

    Mobile phones, (AC, home phone) pairs and zips are unique, so every
    Fig. 2 rule decides a unique correction (no ambiguity warnings);
    pass the result through :func:`repro.core.consistency.check_consistency`
    to verify. Includes the two paper tuples first, so the paper
    walkthroughs still run against generated master data.
    """
    rng = random.Random(seed)
    relation = paper_master()
    used_mob = set(relation.active_domain("Mphn"))
    used_home = {(r["AC"], r["Hphn"]) for r in relation.rows()}
    used_zip = set(relation.active_domain("zip"))
    while len(relation) < n + 2:
        region = rng.choice(UK_REGIONS)
        fn = rng.choice(FIRST_NAMES)
        ln = rng.choice(LAST_NAMES)
        hphn = f"{rng.randrange(2_000_000, 9_999_999)}"
        if (region.ac, hphn) in used_home:
            continue
        mphn = f"07{rng.randrange(100_000_000, 999_999_999)}"
        if mphn in used_mob:
            continue
        district = rng.choice(region.districts)
        zipc = f"{district} {rng.randrange(1, 9)}{rng.choice('ABCDEFGHJKLNPQRSTUWXYZ')}{rng.choice('ABCDEFGHJKLNPQRSTUWXYZ')}"
        if zipc in used_zip:
            continue
        used_home.add((region.ac, hphn))
        used_mob.add(mphn)
        used_zip.add(zipc)
        street = f"{rng.randrange(1, 300)} {rng.choice(STREET_NAMES)}"
        dob = f"{rng.randrange(1, 29):02d}/{rng.randrange(1, 13):02d}/{rng.randrange(40, 99)}"
        gender = rng.choice(("M", "F"))
        relation.append(
            (fn, ln, region.ac, hphn, mphn, street, region.city, zipc, dob, gender)
        )
    return relation


def clean_inputs_from_master(
    master: Relation, n: int, seed: int = 0
) -> Relation:
    """``n`` clean transactions by master persons (the ground truth)."""
    rng = random.Random(seed)
    relation = Relation(INPUT_SCHEMA)
    rows = list(master.rows())
    for _ in range(n):
        s = rng.choice(rows)
        phone_type = rng.choice(("1", "2"))
        phn = s["Hphn"] if phone_type == "1" else s["Mphn"]
        relation.append(
            {
                "FN": s["FN"], "LN": s["LN"], "AC": s["AC"], "phn": phn,
                "type": phone_type, "str": s["str"], "city": s["city"],
                "zip": s["zip"], "item": rng.choice(ITEMS),
            }
        )
    return relation


def _nickname(value: str, rng: random.Random) -> str:
    """Swap a first name for its common short form (Robert -> Bob)."""
    return NICKNAMES.get(value, value)


def default_injector(rate: float = 0.2, seed: int = 0, **kwargs) -> ErrorInjector:
    """The standard UK-workload error model.

    Name cells get abbreviations/nicknames/typos, address cells get typos
    and case errors, the AC gets digit errors and blanks — mirroring the
    error classes the demo narrates. ``phn``, ``type`` and ``item`` stay
    clean: they are the attributes the user must vouch for anyway.
    """
    ops = {
        "FN": [("nickname", _nickname), ("abbreviate", abbreviate), ("typo_replace", typo_replace)],
        "LN": [("typo_replace", typo_replace), ("typo_swap", typo_swap)],
        "AC": [("digit_noise", digit_noise), ("blank", blank)],
        "str": [("typo_drop", typo_drop), ("typo_replace", typo_replace), ("case_mangle", case_mangle)],
        "city": [("typo_replace", typo_replace), ("case_mangle", case_mangle), ("blank", blank)],
        "zip": [("case_mangle", case_mangle), ("typo_swap", typo_swap)],
    }
    return ErrorInjector(ops, rate=rate, seed=seed, **kwargs)


def generate_workload(
    master: Relation,
    n: int,
    *,
    rate: float = 0.2,
    seed: int = 0,
    injector: ErrorInjector | None = None,
) -> InjectionReport:
    """Clean transactions + injected errors: (dirty, clean, errors)."""
    clean = clean_inputs_from_master(master, n, seed=seed)
    injector = injector if injector is not None else default_injector(rate=rate, seed=seed + 1)
    return injector.inject(clean)


def scenario_tuples(master: Relation) -> Callable[[], Iterator[dict[str, Any]]]:
    """The SCENARIO-mode universe of correct tuples (DESIGN.md §1).

    A correct customer tuple describes a master person: name, address and
    AC from the master tuple, ``phn`` the home or mobile phone according
    to ``type``, and ``item`` free (a fresh value — the chase never reads
    it, and genericity makes one representative exact).
    """

    def generate() -> Iterator[dict[str, Any]]:
        for s in master.rows():
            for phone_type, phn_attr in (("1", "Hphn"), ("2", "Mphn")):
                yield {
                    "FN": s["FN"], "LN": s["LN"], "AC": s["AC"],
                    "phn": s[phn_attr], "type": phone_type, "str": s["str"],
                    "city": s["city"], "zip": s["zip"], "item": fresh("item"),
                }

    return generate
